#include "baselines/ublock_estimator.h"

#include <algorithm>
#include <bit>

#include "factorjoin/binning.h"
#include "util/timer.h"

namespace fj {

UBlockEstimator::UBlockEstimator(const Database& db, UBlockOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  std::vector<KeyGroup> groups = db.EquivalentKeyGroups();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const ColumnRef& ref : groups[g].members) {
      column_to_group_[ref] = static_cast<int>(g);
      const Column& col = db.GetTable(ref.table).Col(ref.column);
      auto counts = ValueCounts(col);
      std::vector<std::pair<uint64_t, int64_t>> by_count;
      by_count.reserve(counts.size());
      for (const auto& [v, c] : counts) by_count.emplace_back(c, v);
      std::sort(by_count.rbegin(), by_count.rend());
      TopKStats s;
      for (size_t i = 0; i < by_count.size(); ++i) {
        if (i < options_.top_k) {
          s.top[by_count[i].second] = static_cast<double>(by_count[i].first);
        } else {
          s.rest_count += static_cast<double>(by_count[i].first);
          s.rest_max = std::max(s.rest_max,
                                static_cast<double>(by_count[i].first));
        }
      }
      stats_.emplace(ref, std::move(s));
    }
  }
  selectivity_ = std::make_unique<PostgresEstimator>(db);
  train_seconds_ = timer.Seconds();
}

double UBlockEstimator::MaxDegree(const TopKStats& s) {
  double m = s.rest_max;
  for (const auto& [v, c] : s.top) m = std::max(m, c);
  return std::max(m, 1.0);
}

double UBlockEstimator::PairBound(const TopKStats& a, const TopKStats& b) {
  // Top values of `a` join exactly-known or rest-bounded counts of `b`;
  // everything outside a's top is bounded by b's global max degree.
  double bound = 0.0;
  for (const auto& [v, ca] : a.top) {
    auto it = b.top.find(v);
    double cb = it != b.top.end() ? it->second : b.rest_max;
    bound += ca * cb;
  }
  bound += a.rest_count * MaxDegree(b);
  return bound;
}

UBlockEstimator::UFactor UBlockEstimator::MakeLeaf(
    const Query& query, size_t alias_idx,
    const std::vector<QueryKeyGroup>& groups) const {
  const TableRef& ref = query.tables()[alias_idx];
  UFactor f;
  f.alias_mask = uint64_t{1} << alias_idx;
  double rows = static_cast<double>(db_->GetTable(ref.table).num_rows());
  double sel = selectivity_->FilterSelectivity(query, ref.alias);
  f.card = std::max(rows * sel, 0.0);

  for (size_t g = 0; g < groups.size(); ++g) {
    for (const AliasColumn& m : groups[g].members) {
      if (m.alias != ref.alias) continue;
      ColumnRef cref{ref.table, m.column};
      auto it = stats_.find(cref);
      if (it == stats_.end()) {
        throw std::logic_error("ublock: join key not in schema: " +
                               cref.ToString());
      }
      // Filters scale the masses (independence) but cannot raise degrees, so
      // the per-value counts stay as offline upper bounds.
      TopKStats s = it->second;
      s.rest_count *= sel;
      f.groups[static_cast<int>(g)] = std::move(s);
    }
  }
  return f;
}

UBlockEstimator::UFactor UBlockEstimator::JoinStep(
    const UFactor& left, const UFactor& right,
    const std::vector<int>& connecting) const {
  if (connecting.empty()) {
    throw std::invalid_argument("ublock: no connecting key group");
  }
  // Tightest bound over the connecting groups.
  int best_group = connecting.front();
  double best = -1.0;
  for (int g : connecting) {
    double b = std::min(PairBound(left.groups.at(g), right.groups.at(g)),
                        PairBound(right.groups.at(g), left.groups.at(g)));
    if (best < 0.0 || b < best) {
      best = b;
      best_group = g;
    }
  }
  UFactor out;
  out.alias_mask = left.alias_mask | right.alias_mask;
  out.card = std::min(best, std::max(left.card, 0.0) * std::max(right.card, 0.0));

  const TopKStats& gl = left.groups.at(best_group);
  const TopKStats& gr = right.groups.at(best_group);
  // Joined group's top list: per-value products where both sides are known.
  TopKStats joined;
  double top_sum = 0.0;
  for (const auto& [v, ca] : gl.top) {
    auto it = gr.top.find(v);
    double cb = it != gr.top.end() ? it->second : gr.rest_max;
    joined.top[v] = ca * cb;
    top_sum += ca * cb;
  }
  joined.rest_count = std::max(out.card - top_sum, 0.0);
  joined.rest_max = gl.rest_max * MaxDegree(gr);
  out.groups[best_group] = std::move(joined);

  // Carry other groups, scaled, with degree bounds multiplied by the other
  // side's maximal duplication.
  auto carry = [&](const UFactor& src, double other_dup) {
    for (const auto& [gid, s] : src.groups) {
      if (out.groups.count(gid) > 0) continue;
      TopKStats c = s;
      double f = src.card > 0.0 ? out.card / src.card : 0.0;
      for (auto& [v, cnt] : c.top) cnt *= other_dup;
      c.rest_count *= f;
      c.rest_max *= other_dup;
      out.groups[gid] = std::move(c);
    }
  };
  carry(left, MaxDegree(gr));
  carry(right, MaxDegree(gl));
  return out;
}

double UBlockEstimator::Estimate(const Query& query) const {
  if (query.NumTables() == 0) return 0.0;
  std::vector<QueryKeyGroup> groups = query.KeyGroups();
  std::vector<UFactor> leaves;
  for (size_t i = 0; i < query.NumTables(); ++i) {
    leaves.push_back(MakeLeaf(query, i, groups));
  }
  if (query.NumTables() == 1) return std::max(leaves[0].card, 1.0);

  std::vector<uint64_t> adj = query.AliasAdjacency();
  UFactor current = leaves[0];
  uint64_t remaining =
      ((query.NumTables() == 64) ? ~uint64_t{0}
                                 : (uint64_t{1} << query.NumTables()) - 1) &
      ~current.alias_mask;
  while (remaining != 0) {
    int best = -1;
    uint64_t m = remaining;
    while (m != 0) {
      size_t a = static_cast<size_t>(std::countr_zero(m));
      m &= m - 1;
      if ((adj[a] & current.alias_mask) == 0) continue;
      best = static_cast<int>(a);
      break;
    }
    if (best < 0) {
      throw std::invalid_argument("ublock: disconnected join graph");
    }
    std::vector<int> connecting;
    for (const auto& [gid, s] : leaves[static_cast<size_t>(best)].groups) {
      if (current.groups.count(gid) > 0) connecting.push_back(gid);
    }
    current = JoinStep(current, leaves[static_cast<size_t>(best)], connecting);
    remaining &= ~(uint64_t{1} << best);
  }
  return std::max(current.card, 1.0);
}

size_t UBlockEstimator::ModelSizeBytes() const {
  size_t bytes = selectivity_->ModelSizeBytes();
  for (const auto& [ref, s] : stats_) {
    bytes += s.top.size() * (sizeof(int64_t) + sizeof(double) + sizeof(void*)) +
             2 * sizeof(double);
  }
  return bytes;
}

}  // namespace fj

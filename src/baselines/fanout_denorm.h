// Learned data-driven baseline analog (the BayesCard / DeepDB / FLAT family,
// Section 2.2): denormalizes every join template of the training workload
// offline and keeps a uniform tuple sample of each denormalized join plus its
// exact size. Estimates evaluate the query's filters on the stored sample.
//
// This reproduces the family's characteristic trade-off: high accuracy on
// the templates it has modeled, at the cost of long training (executes the
// joins), large model size (stores per-template state), and no support for
// templates outside the training set, cyclic templates or self joins — in
// which case it falls back to the traditional estimator, mirroring the
// paper's observation that these methods cannot run IMDB-JOB.
//
// The `sample_tuples` capacity knob scales the accuracy/size/training-time
// balance, giving the three named systems' relative ordering (small =
// BayesCard-like, large = FLAT-like).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/postgres_estimator.h"
#include "exec/relation.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"

namespace fj {

struct FanoutDenormOptions {
  size_t sample_tuples = 20000;
  size_t max_output_tuples = 50'000'000;
  uint64_t seed = 5;
};

class FanoutDenormEstimator : public CardinalityEstimator {
 public:
  /// Trains on the join templates appearing in `workload` (filters ignored;
  /// only join structure matters). Cyclic and self-join templates are skipped.
  FanoutDenormEstimator(const Database& db, const std::vector<Query>& workload,
                        std::string name, FanoutDenormOptions options = {});

  std::string Name() const override { return name_; }
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override;
  double TrainSeconds() const override { return train_seconds_; }

  size_t num_templates() const { return templates_.size(); }

  /// Canonical key of a query's join structure.
  static std::string TemplateKey(const Query& query);

 private:
  struct TemplateModel {
    double join_size = 0.0;
    std::vector<std::string> aliases;
    // Sampled row-id tuples of the denormalized join, flattened
    // (arity = aliases.size()).
    std::vector<uint32_t> sample;
    // Alias -> table for filter evaluation.
    std::vector<std::string> tables;
  };

  const Database* db_;  // not owned
  std::string name_;
  FanoutDenormOptions options_;
  std::unordered_map<std::string, TemplateModel> templates_;
  std::unique_ptr<PostgresEstimator> fallback_;
  double train_seconds_ = 0.0;
};

}  // namespace fj

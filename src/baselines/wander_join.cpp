#include "baselines/wander_join.h"

#include <algorithm>

#include "query/filter_eval.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "util/timer.h"

namespace fj {

WanderJoinEstimator::WanderJoinEstimator(const Database& db,
                                         WanderJoinOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  // Index every declared join-key column: value -> row ids.
  for (const ColumnRef& ref : db.JoinKeyColumns()) {
    const Column& col = db.GetTable(ref.table).Col(ref.column);
    KeyIndex index;
    index.reserve(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      int64_t v = col.IntAt(r);
      if (v != kNullInt64) index[v].push_back(static_cast<uint32_t>(r));
    }
    indexes_.emplace(ref, std::move(index));
  }
  train_seconds_ = timer.Seconds();
}

const WanderJoinEstimator::KeyIndex& WanderJoinEstimator::IndexFor(
    const ColumnRef& ref) const {
  auto it = indexes_.find(ref);
  if (it == indexes_.end()) {
    throw std::logic_error("wander join: no index for " + ref.ToString());
  }
  return it->second;
}

double WanderJoinEstimator::ApplyInsert(const std::string& table_name,
                                        size_t first_new_row) {
  WallTimer timer;
  const Table& table = db_->GetTable(table_name);
  for (auto& [ref, index] : indexes_) {
    if (ref.table != table_name) continue;
    const Column& col = table.Col(ref.column);
    for (size_t r = first_new_row; r < col.size(); ++r) {
      int64_t v = col.IntAt(r);
      if (v != kNullInt64) index[v].push_back(static_cast<uint32_t>(r));
    }
  }
  BumpStatsVersion();
  return timer.Seconds();
}

double WanderJoinEstimator::ApplyDelete(const std::string& table_name,
                                        size_t first_deleted_row) {
  WallTimer timer;
  for (auto& [ref, index] : indexes_) {
    if (ref.table != table_name) continue;
    for (auto it = index.begin(); it != index.end();) {
      std::vector<uint32_t>& rows = it->second;
      // Postings are appended in row order, so they are sorted: cut the tail.
      auto cut = std::lower_bound(rows.begin(), rows.end(),
                                  static_cast<uint32_t>(first_deleted_row));
      rows.erase(cut, rows.end());
      it = rows.empty() ? index.erase(it) : std::next(it);
    }
  }
  BumpStatsVersion();
  return timer.Seconds();
}

double WanderJoinEstimator::Estimate(const Query& query) const {
  size_t n = query.NumTables();
  if (n == 0) return 0.0;
  if (n == 1) {
    const TableRef& ref = query.tables()[0];
    return static_cast<double>(
        CountMatches(db_->GetTable(ref.table), *query.FilterFor(ref.alias)));
  }

  // BFS spanning tree of the alias join graph: the walk order. Each non-root
  // alias remembers the join condition used to reach it; the remaining
  // conditions are verified at the end of each walk.
  std::vector<uint64_t> adj = query.AliasAdjacency();
  std::vector<int> order{0};
  std::vector<int> tree_join(n, -1);  // join condition index reaching alias
  std::vector<bool> visited(n, false);
  visited[0] = true;
  for (size_t head = 0; head < order.size(); ++head) {
    size_t u = static_cast<size_t>(order[head]);
    for (size_t j = 0; j < query.joins().size(); ++j) {
      const JoinCondition& join = query.joins()[j];
      size_t a = query.AliasIndex(join.left.alias);
      size_t b = query.AliasIndex(join.right.alias);
      size_t other;
      if (a == u && !visited[b]) {
        other = b;
      } else if (b == u && !visited[a]) {
        other = a;
      } else {
        continue;
      }
      visited[other] = true;
      tree_join[other] = static_cast<int>(j);
      order.push_back(static_cast<int>(other));
    }
  }
  if (order.size() != n) {
    throw std::invalid_argument("wander join: disconnected join graph");
  }
  std::vector<bool> is_tree_edge(query.joins().size(), false);
  for (int j : tree_join) {
    if (j >= 0) is_tree_edge[static_cast<size_t>(j)] = true;
  }

  const Table& first_table = db_->GetTable(query.tables()[0].table);
  if (first_table.num_rows() == 0) return 0.0;

  // Walks draw from a per-call generator so Estimate stays const and
  // thread-safe, and every call on the same query is bit-identical
  // regardless of what ran before it — Fnv1a64 (not std::hash, which is
  // implementation-defined) keeps that true across platforms.
  Rng rng(options_.seed, Fnv1a64(query.ToString()));

  double sum = 0.0;
  std::vector<uint32_t> walk_rows(n, 0);
  for (size_t w = 0; w < options_.walks; ++w) {
    double weight = static_cast<double>(first_table.num_rows());
    uint32_t r0 = static_cast<uint32_t>(rng.Below(first_table.num_rows()));
    if (!EvalRow(first_table, *query.FilterFor(query.tables()[0].alias), r0)) {
      continue;
    }
    walk_rows[0] = r0;
    bool dead = false;
    for (size_t step = 1; step < order.size() && !dead; ++step) {
      size_t alias_idx = static_cast<size_t>(order[step]);
      const JoinCondition& join =
          query.joins()[static_cast<size_t>(tree_join[alias_idx])];
      // Orient: `from` is the already-visited side.
      AliasColumn from = join.left, to = join.right;
      if (query.AliasIndex(to.alias) != alias_idx) std::swap(from, to);
      const Table& from_table = db_->GetTable(query.TableOf(from.alias));
      int64_t key = from_table.Col(from.column)
                        .IntAt(walk_rows[query.AliasIndex(from.alias)]);
      if (key == kNullInt64) {
        dead = true;
        break;
      }
      const KeyIndex& index =
          IndexFor({query.TableOf(to.alias), to.column});
      auto it = index.find(key);
      if (it == index.end() || it->second.empty()) {
        dead = true;
        break;
      }
      uint32_t pick = it->second[rng.Below(it->second.size())];
      weight *= static_cast<double>(it->second.size());
      const Table& to_table = db_->GetTable(query.TableOf(to.alias));
      if (!EvalRow(to_table, *query.FilterFor(to.alias), pick)) {
        dead = true;
        break;
      }
      walk_rows[alias_idx] = pick;
    }
    if (dead) continue;
    // Verify non-tree join conditions (cyclic templates).
    bool ok = true;
    for (size_t j = 0; j < query.joins().size() && ok; ++j) {
      if (is_tree_edge[j]) continue;
      const JoinCondition& join = query.joins()[j];
      const Table& lt = db_->GetTable(query.TableOf(join.left.alias));
      const Table& rt = db_->GetTable(query.TableOf(join.right.alias));
      int64_t lv = lt.Col(join.left.column)
                       .IntAt(walk_rows[query.AliasIndex(join.left.alias)]);
      int64_t rv = rt.Col(join.right.column)
                       .IntAt(walk_rows[query.AliasIndex(join.right.alias)]);
      ok = lv != kNullInt64 && lv == rv;
    }
    if (ok) sum += weight;
  }
  return sum / static_cast<double>(options_.walks);
}

size_t WanderJoinEstimator::ModelSizeBytes() const {
  // Indexes are considered part of the database (as in the paper's setup with
  // PK/FK indexes built), so the estimator itself is almost stateless.
  return sizeof(*this);
}

std::unique_ptr<WanderJoinEstimator> WanderJoinEstimator::MakeUntrained(
    const Database& db) {
  return std::unique_ptr<WanderJoinEstimator>(
      new WanderJoinEstimator(db, UntrainedTag{}));
}

void WanderJoinEstimator::Save(ByteWriter& w) const {
  w.U64(options_.walks);
  w.U64(options_.seed);
  w.F64(train_seconds_);
  auto sorted = SortedEntries(indexes_);
  w.U32(static_cast<uint32_t>(sorted.size()));
  for (const auto* entry : sorted) {
    w.Str(entry->first.table);
    w.Str(entry->first.column);
    auto keys = SortedEntries(entry->second);
    w.U32(static_cast<uint32_t>(keys.size()));
    for (const auto* key : keys) {
      w.I64(key->first);
      w.U32(static_cast<uint32_t>(key->second.size()));
      for (uint32_t row : key->second) w.U32(row);
    }
  }
}

void WanderJoinEstimator::Load(ByteReader& r) {
  options_.walks = r.U64();
  options_.seed = r.U64();
  train_seconds_ = r.F64();
  uint32_t n_indexes = r.CountU32(2 * sizeof(uint32_t));
  indexes_.clear();
  for (uint32_t i = 0; i < n_indexes; ++i) {
    ColumnRef ref{r.Str(), r.Str()};
    if (!db_->HasTable(ref.table) ||
        !db_->GetTable(ref.table).HasColumn(ref.column)) {
      throw std::invalid_argument(
          "wander join snapshot references unknown column " + ref.ToString());
    }
    size_t table_rows = db_->GetTable(ref.table).num_rows();
    uint32_t n_keys = r.CountU32(sizeof(int64_t) + sizeof(uint32_t));
    KeyIndex index;
    index.reserve(n_keys);
    for (uint32_t k = 0; k < n_keys; ++k) {
      int64_t key = r.I64();
      uint32_t n_rows = r.CountU32(sizeof(uint32_t));
      std::vector<uint32_t>& rows = index[key];
      rows.reserve(n_rows);
      for (uint32_t j = 0; j < n_rows; ++j) {
        uint32_t row = r.U32();
        if (row >= table_rows) {
          throw SerializeError("posting row id past the bound table's end");
        }
        rows.push_back(row);
      }
    }
    indexes_.emplace(std::move(ref), std::move(index));
  }
}

}  // namespace fj

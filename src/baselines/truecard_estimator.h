// Oracle baseline: returns the true cardinality (computed by executing the
// query, cached). Represents the paper's TrueCard "optimal" row; the bench
// harness charges it zero planning latency.
#pragma once

#include <mutex>
#include <unordered_map>

#include "exec/true_card.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"

namespace fj {

class TrueCardEstimator : public CardinalityEstimator {
 public:
  explicit TrueCardEstimator(const Database& db) : db_(&db) {}

  std::string Name() const override { return "truecard"; }

  double Estimate(const Query& query) const override {
    std::string key = query.ToString();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    // Execute outside the lock: concurrent misses on the same query do
    // redundant work but stay correct (both compute the same value).
    auto card = TrueCardinality(*db_, query);
    // On executor overflow fall back to the cap (still a huge number that
    // steers the optimizer away).
    double value = card.has_value()
                       ? static_cast<double>(*card)
                       : static_cast<double>(TrueCardOptions{}.max_output_tuples);
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(std::move(key), value);
    return value;
  }

 private:
  const Database* db_;  // not owned
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, double> cache_;
};

}  // namespace fj

// Oracle baseline: returns the true cardinality (computed by executing the
// query, cached). Represents the paper's TrueCard "optimal" row; the bench
// harness charges it zero planning latency.
//
// Updates: the oracle has no trained state — its "statistics" are the live
// table plus the memoized results. ApplyInsert/ApplyDelete therefore only
// drop cached results touching the updated table (the next Estimate
// re-executes against the current data) and bump the statistics epoch.
#pragma once

#include <algorithm>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/true_card.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"
#include "util/timer.h"

namespace fj {

class TrueCardEstimator : public CardinalityEstimator {
 public:
  explicit TrueCardEstimator(const Database& db) : db_(&db) {}

  std::string Name() const override { return "truecard"; }

  double Estimate(const Query& query) const override {
    std::string key = query.ToString();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second.value;
    }
    // Execute outside the lock: concurrent misses on the same query do
    // redundant work but stay correct (both compute the same value).
    auto card = TrueCardinality(*db_, query);
    // On executor overflow fall back to the cap (still a huge number that
    // steers the optimizer away).
    double value = card.has_value()
                       ? static_cast<double>(*card)
                       : static_cast<double>(TrueCardOptions{}.max_output_tuples);
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(std::move(key), Entry{value, query.BaseTables()});
    return value;
  }

  /// The oracle absorbs any update by re-executing on demand.
  bool SupportsUpdates() const override { return true; }

  /// The oracle has no trained state (its memo cache is a performance
  /// artifact, not a model): the snapshot payload is empty, and a loaded
  /// estimator re-executes against the bound database — trivially
  /// bit-identical to the original.
  bool SupportsSnapshot() const override { return true; }
  void Save(ByteWriter& /*w*/) const override {}
  void Load(ByteReader& /*r*/) override {}

  /// Drops memoized results touching `table_name`; subsequent estimates
  /// re-execute against the already-updated table. Same exclusivity contract
  /// as every update method: no estimate may run concurrently — an in-flight
  /// Estimate scans the mutating table (a data race) and could re-memoize a
  /// pre-update truth after the invalidation ran.
  double ApplyInsert(const std::string& table_name,
                     size_t /*first_new_row*/) override {
    return Invalidate(table_name);
  }

  /// Same as ApplyInsert: tail deletions are absorbed by re-execution.
  double ApplyDelete(const std::string& table_name,
                     size_t /*first_deleted_row*/) override {
    return Invalidate(table_name);
  }

 private:
  struct Entry {
    double value = 0.0;
    std::vector<std::string> tables;  // base tables the query touches
  };

  double Invalidate(const std::string& table_name) {
    WallTimer timer;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = cache_.begin(); it != cache_.end();) {
        const auto& tables = it->second.tables;
        if (std::find(tables.begin(), tables.end(), table_name) !=
            tables.end()) {
          it = cache_.erase(it);
        } else {
          ++it;
        }
      }
    }
    BumpStatsVersion();
    return timer.Seconds();
  }

  const Database* db_;  // not owned
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, Entry> cache_;
};

}  // namespace fj

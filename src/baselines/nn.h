// Minimal dense neural network (fully-connected layers, ReLU, Adam, MSE)
// used by the MSCN query-driven baseline. No external dependencies.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fj {

/// Fully-connected feed-forward regressor.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}. Weights are He-initialized.
  Mlp(std::vector<size_t> layer_sizes, uint64_t seed = 1);

  /// Forward pass for one input vector.
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// One Adam step on a minibatch (MSE loss). Returns the batch loss.
  double TrainBatch(const std::vector<std::vector<double>>& xs,
                    const std::vector<std::vector<double>>& ys,
                    double learning_rate);

  size_t ParameterCount() const;
  size_t MemoryBytes() const { return ParameterCount() * 3 * sizeof(double); }

 private:
  struct Layer {
    size_t in = 0, out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;
    // Adam moments.
    std::vector<double> mw, vw, mb, vb;
  };

  /// Forward keeping per-layer activations (training path).
  void ForwardTrace(const std::vector<double>& x,
                    std::vector<std::vector<double>>* activations) const;

  std::vector<Layer> layers_;
  int64_t adam_t_ = 0;
};

}  // namespace fj

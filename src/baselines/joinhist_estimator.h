// Classical join-histogram estimator (Dell'Era / Ioannidis style, Section
// 2.2): per-bin counts of the join keys are "multiplied" bin by bin with the
// distinct-values division inside each bin (join uniformity within bins) and
// attribute-independence filter scaling.
//
// The two configuration flags realize the Table 8 ablation:
//   use_mfv_bound   — replace the in-bin uniformity formula with FactorJoin's
//                     MFV bound (removes join uniformity);
//   use_conditional — replace independence-scaled unconditioned bin counts
//                     with conditional bin masses from a single-table
//                     estimator (removes attribute independence).
// With both flags on, the method coincides with FactorJoin on acyclic
// templates (Section 6.4, "reduces to JoinHist with both techniques").
#pragma once

#include <map>
#include <memory>

#include "baselines/postgres_estimator.h"
#include "factorjoin/bin_stats.h"
#include "factorjoin/binning.h"
#include "stats/cardinality_estimator.h"
#include "stats/table_estimator.h"
#include "storage/database.h"

namespace fj {

struct JoinHistOptions {
  uint32_t num_bins = 100;
  BinningStrategy binning = BinningStrategy::kEqualWidth;
  bool use_mfv_bound = false;
  bool use_conditional = false;
  TableEstimatorKind conditional_estimator = TableEstimatorKind::kBayesNet;
  double sampling_rate = 0.05;
};

class JoinHistEstimator : public CardinalityEstimator {
 public:
  JoinHistEstimator(const Database& db, JoinHistOptions options = {});

  std::string Name() const override;
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override;
  double TrainSeconds() const override { return train_seconds_; }

 private:
  /// Per-bin state carried along the greedy pairwise join.
  struct HistFactor {
    double card = 0.0;
    // Per query-key-group: per-bin count, ndv and mfv views of the current
    // intermediate result.
    std::map<int, std::vector<double>> count;
    std::map<int, std::vector<double>> ndv;
    std::map<int, std::vector<double>> mfv;
    uint64_t alias_mask = 0;
  };

  HistFactor MakeLeaf(const Query& query, size_t alias_idx,
                      const std::vector<QueryKeyGroup>& groups) const;
  HistFactor JoinStep(const HistFactor& left, const HistFactor& right,
                      const std::vector<int>& connecting) const;

  const Database* db_;  // not owned
  JoinHistOptions options_;
  std::vector<Binning> group_binnings_;
  std::unordered_map<ColumnRef, int, ColumnRefHash> column_to_group_;
  std::unordered_map<ColumnRef, ColumnBinStats, ColumnRefHash> bin_stats_;
  std::unique_ptr<PostgresEstimator> selectivity_;  // independence filters
  std::unordered_map<std::string, std::unique_ptr<TableEstimator>>
      conditional_;  // when use_conditional
  double train_seconds_ = 0.0;
};

}  // namespace fj

// MSCN-style learned query-driven estimator (Kipf et al., CIDR'19):
// featurizes a query as averaged one-hot sets of tables, joins and filter
// predicates, and regresses log-cardinality with a small MLP trained on an
// executed query workload. Shares the query-driven family's strengths (fast
// estimates) and weaknesses (needs a large training workload, degrades under
// workload shift / data updates) discussed in Section 2.2.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/nn.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"

namespace fj {

struct MscnOptions {
  size_t hidden_units = 64;
  size_t epochs = 40;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  uint64_t seed = 21;
};

/// One supervised example: a (sub-plan) query and its true cardinality.
struct TrainingExample {
  Query query;
  double cardinality = 0.0;
};

class MscnEstimator : public CardinalityEstimator {
 public:
  MscnEstimator(const Database& db, const std::vector<TrainingExample>& examples,
                MscnOptions options = {});

  std::string Name() const override { return "mscn"; }
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override { return mlp_->MemoryBytes(); }
  double TrainSeconds() const override { return train_seconds_; }

  /// Feature vector of a query (exposed for tests).
  std::vector<double> Featurize(const Query& query) const;
  size_t FeatureDim() const;

 private:
  void BuildVocabulary(const Database& db);

  const Database* db_;  // not owned
  MscnOptions options_;
  std::unordered_map<std::string, size_t> table_slot_;
  std::unordered_map<std::string, size_t> join_slot_;    // canonical "a.c=b.d"
  std::unordered_map<std::string, size_t> column_slot_;  // "table.column"
  struct ColumnRangeStat {
    double min_code = 0.0;
    double max_code = 1.0;
  };
  std::unordered_map<std::string, ColumnRangeStat> column_range_;
  double log_card_scale_ = 1.0;
  std::unique_ptr<Mlp> mlp_;
  double train_seconds_ = 0.0;
};

}  // namespace fj

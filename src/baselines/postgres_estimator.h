// Selinger-style estimator as deployed in PostgreSQL (Section 2.2,
// "Traditional methods"): per-column equal-depth histograms with attribute
// independence across columns, and the join-key uniformity assumption
// |A join B| = |A| * |B| / max(NDV(A.k), NDV(B.k)) applied per join
// condition.
#pragma once

#include <unordered_map>

#include "stats/cardinality_estimator.h"
#include "stats/histogram.h"
#include "storage/database.h"

namespace fj {

struct PostgresEstimatorOptions {
  uint32_t histogram_buckets = 100;
};

class PostgresEstimator : public CardinalityEstimator {
 public:
  explicit PostgresEstimator(const Database& db,
                             PostgresEstimatorOptions options = {});

  /// Snapshot-loading path: binds to `db` without running ANALYZE —
  /// Load() must run before any estimate.
  static std::unique_ptr<PostgresEstimator> MakeUntrained(const Database& db);

  std::string Name() const override { return "postgres"; }
  double Estimate(const Query& query) const override;
  double TrainSeconds() const override { return train_seconds_; }

  /// Full trained-state snapshot (per-table histograms + row counts);
  /// ModelSizeBytes() is the exact serialized footprint via the base class.
  bool SupportsSnapshot() const override { return true; }
  void Save(ByteWriter& w) const override;
  void Load(ByteReader& r) override;

  /// Histogram stats are cheap to recompute table-locally (ANALYZE-style).
  bool SupportsUpdates() const override { return true; }

  /// Recomputes the updated table's histograms from its current contents
  /// (the rows are already appended). Table-local: no other table's stats
  /// are touched. Bumps StatsVersion().
  double ApplyInsert(const std::string& table_name,
                     size_t first_new_row) override;

  /// Same table-local re-ANALYZE after a tail deletion (the table is already
  /// truncated). Bumps StatsVersion().
  double ApplyDelete(const std::string& table_name,
                     size_t first_deleted_row) override;

  /// Filter selectivity of one alias (exposed for reuse by other
  /// tradition-style baselines).
  double FilterSelectivity(const Query& query, const std::string& alias) const;

 private:
  struct TableStats {
    std::vector<std::string> columns;
    std::vector<ColumnHistogram> histograms;
    uint64_t rows = 0;
  };

  struct UntrainedTag {};
  PostgresEstimator(const Database& db, UntrainedTag) : db_(&db) {}

  /// Re-ANALYZE one table (histograms + row count) from its current data.
  /// Shared by training and both update paths; does not bump the version.
  double RebuildTableStats(const std::string& table_name);

  const Database* db_;  // not owned
  PostgresEstimatorOptions options_;
  std::unordered_map<std::string, TableStats> stats_;
  double train_seconds_ = 0.0;
};

}  // namespace fj

#include "baselines/pessimistic_estimator.h"

#include <bit>
#include <unordered_map>

#include "query/filter_eval.h"

namespace fj {
namespace {

uint32_t HashPartition(int64_t value, uint32_t partitions) {
  uint64_t h = static_cast<uint64_t>(value) * 0x9e3779b97f4a7c15ull;
  return static_cast<uint32_t>(h >> 33) % partitions;
}

}  // namespace

PessimisticEstimator::PessimisticEstimator(const Database& db,
                                           PessimisticOptions options)
    : db_(&db), options_(options) {}

BoundFactor PessimisticEstimator::MakeLeafSketch(
    const Query& query, size_t alias_idx,
    const std::vector<QueryKeyGroup>& groups) const {
  const TableRef& ref = query.tables()[alias_idx];
  const Table& table = db_->GetTable(ref.table);

  // Materialize the filter (this is where PessEst pays its latency).
  std::vector<uint32_t> rows = EvalSelection(table, *query.FilterFor(ref.alias));

  BoundFactor factor;
  factor.alias_mask = uint64_t{1} << alias_idx;
  factor.card = static_cast<double>(rows.size());

  for (size_t g = 0; g < groups.size(); ++g) {
    for (const AliasColumn& member : groups[g].members) {
      if (member.alias != ref.alias) continue;
      const Column& col = table.Col(member.column);
      // Exact degree sketch on the filtered rows.
      std::unordered_map<int64_t, uint64_t> degrees;
      degrees.reserve(rows.size());
      for (uint32_t r : rows) {
        int64_t v = col.IntAt(r);
        if (v != kNullInt64) ++degrees[v];
      }
      GroupBound gb;
      gb.mass.assign(options_.partitions, 0.0);
      gb.mfv.assign(options_.partitions, 0.0);
      for (const auto& [v, d] : degrees) {
        uint32_t p = HashPartition(v, options_.partitions);
        gb.mass[p] += static_cast<double>(d);
        gb.mfv[p] = std::max(gb.mfv[p], static_cast<double>(d));
      }
      auto it = factor.groups.find(static_cast<int>(g));
      if (it == factor.groups.end()) {
        factor.groups[static_cast<int>(g)] = std::move(gb);
      } else {
        for (uint32_t p = 0; p < options_.partitions; ++p) {
          it->second.mass[p] = std::min(it->second.mass[p], gb.mass[p]);
          it->second.mfv[p] = std::min(it->second.mfv[p], gb.mfv[p]);
        }
      }
    }
  }
  return factor;
}

double PessimisticEstimator::Estimate(const Query& query) const {
  if (query.NumTables() == 0) return 0.0;
  std::vector<QueryKeyGroup> groups = query.KeyGroups();
  std::vector<BoundFactor> leaves;
  for (size_t i = 0; i < query.NumTables(); ++i) {
    leaves.push_back(MakeLeafSketch(query, i, groups));
  }
  if (query.NumTables() == 1) return leaves[0].card;

  std::vector<uint64_t> adj = query.AliasAdjacency();
  size_t start = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (leaves[i].card < leaves[start].card) start = i;
  }
  BoundFactor current = leaves[start];
  uint64_t remaining =
      ((query.NumTables() == 64) ? ~uint64_t{0}
                                 : (uint64_t{1} << query.NumTables()) - 1) &
      ~current.alias_mask;
  while (remaining != 0) {
    int best = -1;
    uint64_t m = remaining;
    while (m != 0) {
      size_t a = static_cast<size_t>(std::countr_zero(m));
      m &= m - 1;
      if ((adj[a] & current.alias_mask) == 0) continue;
      if (best < 0 ||
          leaves[a].card < leaves[static_cast<size_t>(best)].card) {
        best = static_cast<int>(a);
      }
    }
    if (best < 0) {
      throw std::invalid_argument("pessest: disconnected join graph");
    }
    std::vector<int> connecting;
    for (const auto& [gid, gb] : leaves[static_cast<size_t>(best)].groups) {
      if (current.groups.count(gid) > 0) connecting.push_back(gid);
    }
    current = JoinBoundFactors(current, leaves[static_cast<size_t>(best)],
                               connecting);
    remaining &= ~(uint64_t{1} << best);
  }
  return current.card;
}

}  // namespace fj

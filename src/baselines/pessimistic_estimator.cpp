#include "baselines/pessimistic_estimator.h"

#include <bit>
#include <unordered_map>

#include "factorjoin/kernels.h"
#include "query/filter_eval.h"

namespace fj {
namespace {

uint32_t HashPartition(int64_t value, uint32_t partitions) {
  uint64_t h = static_cast<uint64_t>(value) * 0x9e3779b97f4a7c15ull;
  return static_cast<uint32_t>(h >> 33) % partitions;
}

}  // namespace

PessimisticEstimator::PessimisticEstimator(const Database& db,
                                           PessimisticOptions options)
    : db_(&db), options_(options) {}

BoundFactor PessimisticEstimator::MakeLeafSketch(
    const Query& query, size_t alias_idx,
    const std::vector<QueryKeyGroup>& groups, FactorArena* arena) const {
  const TableRef& ref = query.tables()[alias_idx];
  const Table& table = db_->GetTable(ref.table);

  // Materialize the filter (this is where PessEst pays its latency).
  std::vector<uint32_t> rows = EvalSelection(table, *query.FilterFor(ref.alias));

  BoundFactor factor;
  factor.alias_mask = uint64_t{1} << alias_idx;
  factor.card = static_cast<double>(rows.size());

  for (size_t g = 0; g < groups.size(); ++g) {
    for (const AliasColumn& member : groups[g].members) {
      if (member.alias != ref.alias) continue;
      const Column& col = table.Col(member.column);
      // Exact degree sketch on the filtered rows.
      std::unordered_map<int64_t, uint64_t> degrees;
      degrees.reserve(rows.size());
      for (uint32_t r : rows) {
        int64_t v = col.IntAt(r);
        if (v != kNullInt64) ++degrees[v];
      }
      double* mass = arena->AllocZeroed(options_.partitions);
      double* mfv = arena->AllocZeroed(options_.partitions);
      for (const auto& [v, d] : degrees) {
        uint32_t p = HashPartition(v, options_.partitions);
        mass[p] += static_cast<double>(d);
        mfv[p] = std::max(mfv[p], static_cast<double>(d));
      }
      GroupSpan* existing = factor.FindGroup(static_cast<int>(g));
      if (existing == nullptr) {
        factor.groups.push_back(GroupSpan{static_cast<int>(g),
                                          options_.partitions, mass, mfv});
      } else {
        kernels::MinInto(existing->mass, mass, options_.partitions);
        kernels::MinInto(existing->mfv, mfv, options_.partitions);
      }
    }
  }
  return factor;
}

double PessimisticEstimator::Estimate(const Query& query) const {
  if (query.NumTables() == 0) return 0.0;
  std::vector<QueryKeyGroup> groups = query.KeyGroups();
  FactorArena arena;
  std::vector<BoundFactor> leaves;
  leaves.reserve(query.NumTables());
  for (size_t i = 0; i < query.NumTables(); ++i) {
    leaves.push_back(MakeLeafSketch(query, i, groups, &arena));
  }
  if (query.NumTables() == 1) return leaves[0].card;

  std::vector<uint64_t> adj = query.AliasAdjacency();
  size_t start = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (leaves[i].card < leaves[start].card) start = i;
  }
  BoundFactor current = leaves[start];
  uint64_t remaining =
      ((query.NumTables() == 64) ? ~uint64_t{0}
                                 : (uint64_t{1} << query.NumTables()) - 1) &
      ~current.alias_mask;
  while (remaining != 0) {
    int best = -1;
    uint64_t m = remaining;
    while (m != 0) {
      size_t a = static_cast<size_t>(std::countr_zero(m));
      m &= m - 1;
      if ((adj[a] & current.alias_mask) == 0) continue;
      if (best < 0 ||
          leaves[a].card < leaves[static_cast<size_t>(best)].card) {
        best = static_cast<int>(a);
      }
    }
    if (best < 0) {
      throw std::invalid_argument("pessest: disconnected join graph");
    }
    std::vector<int> connecting;
    for (const GroupSpan& g : leaves[static_cast<size_t>(best)].groups) {
      if (current.FindGroup(g.gid) != nullptr) connecting.push_back(g.gid);
    }
    current = JoinBoundFactors(current, leaves[static_cast<size_t>(best)],
                               connecting, &arena);
    remaining &= ~(uint64_t{1} << best);
  }
  return current.card;
}

}  // namespace fj

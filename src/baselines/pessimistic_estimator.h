// Pessimistic cardinality estimation (Cai, Balazinska, Suciu, SIGMOD'19
// flavor): an *exact* upper bound computed at query time from the filtered
// tables. Each alias's filtered join-key columns are summarized into
// hash-partitioned degree sketches (per-partition total and max degree), and
// the sketches are combined with the same MFV bound arithmetic FactorJoin
// uses — but since the sketches are built on the materialized filter results,
// the bound is exact and never underestimates. The price is planning latency:
// every estimate scans the base tables (Section 6.2's PessEst discussion).
#pragma once

#include "factorjoin/factor.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"

namespace fj {

struct PessimisticOptions {
  /// Number of hash partitions per key group sketch.
  uint32_t partitions = 64;
};

class PessimisticEstimator : public CardinalityEstimator {
 public:
  PessimisticEstimator(const Database& db, PessimisticOptions options = {});

  std::string Name() const override { return "pessest"; }
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override { return sizeof(*this); }

 private:
  /// Per-bin sketch arrays are allocated from `arena` (one per Estimate
  /// call), matching the flat factor layout of factor.h.
  BoundFactor MakeLeafSketch(const Query& query, size_t alias_idx,
                             const std::vector<QueryKeyGroup>& groups,
                             FactorArena* arena) const;

  const Database* db_;  // not owned
  PessimisticOptions options_;
};

}  // namespace fj

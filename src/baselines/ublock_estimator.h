// U-Block-style bound estimator (Hertzschuch et al., CIDR'21): per join key,
// offline top-k most-frequent-value statistics plus a uniform summary of the
// remainder, combined into a cardinality upper bound. Evaluated standalone
// (without the paper's companion plan enumerator), as in Section 6.1.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "baselines/postgres_estimator.h"
#include "stats/cardinality_estimator.h"
#include "storage/database.h"

namespace fj {

struct UBlockOptions {
  uint32_t top_k = 16;
};

class UBlockEstimator : public CardinalityEstimator {
 public:
  UBlockEstimator(const Database& db, UBlockOptions options = {});

  std::string Name() const override { return "ublock"; }
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override;
  double TrainSeconds() const override { return train_seconds_; }

 private:
  /// Top-k summary of one key column (or of an intermediate result's key).
  struct TopKStats {
    std::unordered_map<int64_t, double> top;  // value -> count
    double rest_count = 0.0;                  // mass outside `top`
    double rest_max = 1.0;                    // max count outside `top`
  };

  struct UFactor {
    double card = 0.0;
    std::map<int, TopKStats> groups;  // by query key group
    uint64_t alias_mask = 0;
  };

  static double MaxDegree(const TopKStats& s);
  static double PairBound(const TopKStats& a, const TopKStats& b);

  UFactor MakeLeaf(const Query& query, size_t alias_idx,
                   const std::vector<QueryKeyGroup>& groups) const;
  UFactor JoinStep(const UFactor& left, const UFactor& right,
                   const std::vector<int>& connecting) const;

  const Database* db_;  // not owned
  UBlockOptions options_;
  std::unordered_map<ColumnRef, TopKStats, ColumnRefHash> stats_;
  std::unordered_map<ColumnRef, int, ColumnRefHash> column_to_group_;
  std::unique_ptr<PostgresEstimator> selectivity_;
  double train_seconds_ = 0.0;
};

}  // namespace fj

#include "baselines/joinhist_estimator.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "stats/bayes_net.h"
#include "stats/sampling_estimator.h"
#include "stats/truescan_estimator.h"
#include "util/timer.h"

namespace fj {

JoinHistEstimator::JoinHistEstimator(const Database& db,
                                     JoinHistOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  std::vector<KeyGroup> groups = db.EquivalentKeyGroups();
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const ColumnRef& ref : groups[g].members) {
      column_to_group_[ref] = static_cast<int>(g);
    }
    std::vector<const Column*> cols;
    for (const ColumnRef& ref : groups[g].members) {
      cols.push_back(&db.GetTable(ref.table).Col(ref.column));
    }
    group_binnings_.push_back(
        BuildBinning(options_.binning, cols, options_.num_bins));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const ColumnRef& ref : groups[g].members) {
      bin_stats_.emplace(ref,
                         ColumnBinStats(db.GetTable(ref.table).Col(ref.column),
                                        group_binnings_[g]));
    }
  }
  selectivity_ = std::make_unique<PostgresEstimator>(db);
  if (options_.use_conditional) {
    for (const std::string& name : db.TableNames()) {
      const Table& table = db.GetTable(name);
      switch (options_.conditional_estimator) {
        case TableEstimatorKind::kSampling:
          conditional_[name] = std::make_unique<SamplingEstimator>(
              table, options_.sampling_rate);
          break;
        case TableEstimatorKind::kTrueScan:
          conditional_[name] = std::make_unique<TrueScanEstimator>(table);
          break;
        case TableEstimatorKind::kBayesNet: {
          std::unordered_map<std::string, const Binning*> key_binnings;
          for (const auto& [ref, gid] : column_to_group_) {
            if (ref.table == name) {
              key_binnings[ref.column] =
                  &group_binnings_[static_cast<size_t>(gid)];
            }
          }
          conditional_[name] = std::make_unique<BayesNetEstimator>(
              table, std::move(key_binnings));
          break;
        }
      }
    }
  }
  train_seconds_ = timer.Seconds();
}

std::string JoinHistEstimator::Name() const {
  std::string name = "joinhist";
  if (options_.use_mfv_bound) name += "+bound";
  if (options_.use_conditional) name += "+conditional";
  return name;
}

JoinHistEstimator::HistFactor JoinHistEstimator::MakeLeaf(
    const Query& query, size_t alias_idx,
    const std::vector<QueryKeyGroup>& groups) const {
  const TableRef& ref = query.tables()[alias_idx];
  HistFactor f;
  f.alias_mask = uint64_t{1} << alias_idx;

  // Member key columns of this alias per query key group.
  struct Key {
    int group;
    ColumnRef cref;
    const Binning* binning;
  };
  std::vector<Key> keys;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const AliasColumn& m : groups[g].members) {
      if (m.alias != ref.alias) continue;
      ColumnRef cref{ref.table, m.column};
      auto it = column_to_group_.find(cref);
      if (it == column_to_group_.end()) {
        throw std::logic_error("join key not declared in schema: " +
                               cref.ToString());
      }
      keys.push_back({static_cast<int>(g), cref,
                      &group_binnings_[static_cast<size_t>(it->second)]});
    }
  }

  double rows = static_cast<double>(db_->GetTable(ref.table).num_rows());
  double sel = selectivity_->FilterSelectivity(query, ref.alias);
  f.card = std::max(rows * sel, 0.0);

  if (options_.use_conditional) {
    const TableEstimator& est = *conditional_.at(ref.table);
    std::vector<KeyDistRequest> requests;
    for (const Key& k : keys) requests.push_back({k.cref.column, k.binning});
    KeyDistResult dists = est.EstimateKeyDists(*query.FilterFor(ref.alias),
                                               requests);
    f.card = std::max(dists.filtered_rows, 0.0);
    for (size_t i = 0; i < keys.size(); ++i) {
      const ColumnBinStats& stats = bin_stats_.at(keys[i].cref);
      uint32_t bins = keys[i].binning->num_bins();
      std::vector<double> count(bins), ndv(bins), mfv(bins);
      for (uint32_t b = 0; b < bins; ++b) {
        count[b] = std::min(dists.masses[i][b],
                            static_cast<double>(stats.TotalCount(b)));
        ndv[b] = static_cast<double>(std::max<uint64_t>(stats.DistinctCount(b), 1));
        mfv[b] = static_cast<double>(std::max<uint64_t>(stats.MfvCount(b), 1));
      }
      f.count[keys[i].group] = std::move(count);
      f.ndv[keys[i].group] = std::move(ndv);
      f.mfv[keys[i].group] = std::move(mfv);
    }
  } else {
    // Attribute independence: scale the unconditioned per-bin counts by the
    // filter selectivity.
    for (const Key& k : keys) {
      const ColumnBinStats& stats = bin_stats_.at(k.cref);
      uint32_t bins = k.binning->num_bins();
      std::vector<double> count(bins), ndv(bins), mfv(bins);
      for (uint32_t b = 0; b < bins; ++b) {
        count[b] = static_cast<double>(stats.TotalCount(b)) * sel;
        ndv[b] = static_cast<double>(std::max<uint64_t>(stats.DistinctCount(b), 1));
        mfv[b] = static_cast<double>(std::max<uint64_t>(stats.MfvCount(b), 1));
      }
      f.count[k.group] = std::move(count);
      f.ndv[k.group] = std::move(ndv);
      f.mfv[k.group] = std::move(mfv);
    }
  }
  return f;
}

JoinHistEstimator::HistFactor JoinHistEstimator::JoinStep(
    const HistFactor& left, const HistFactor& right,
    const std::vector<int>& connecting) const {
  if (connecting.empty()) {
    throw std::invalid_argument("JoinHist: no connecting key group");
  }
  // Per-bin join size for the (first) connecting group; additional equality
  // conditions are ignored (classical join histograms handle one condition
  // per join step).
  int g = connecting.front();
  const auto& lc = left.count.at(g);
  const auto& rc = right.count.at(g);
  const auto& ln = left.ndv.at(g);
  const auto& rn = right.ndv.at(g);
  const auto& lm = left.mfv.at(g);
  const auto& rm = right.mfv.at(g);
  size_t bins = std::min(lc.size(), rc.size());

  HistFactor out;
  out.alias_mask = left.alias_mask | right.alias_mask;
  std::vector<double> jcount(bins), jndv(bins), jmfv(bins);
  double total = 0.0;
  for (size_t b = 0; b < bins; ++b) {
    double size;
    if (options_.use_mfv_bound) {
      size = (lc[b] <= 0.0 || rc[b] <= 0.0)
                 ? 0.0
                 : std::min(lc[b] * rm[b], rc[b] * lm[b]);
    } else {
      // In-bin uniformity: n_A * n_B / max(ndv_A, ndv_B).
      size = lc[b] * rc[b] / std::max(std::max(ln[b], rn[b]), 1.0);
    }
    jcount[b] = size;
    jndv[b] = std::min(ln[b], rn[b]);
    jmfv[b] = lm[b] * rm[b];
    total += size;
  }
  out.card = std::min(total, std::max(left.card, 0.0) * std::max(right.card, 0.0));
  out.count[g] = std::move(jcount);
  out.ndv[g] = std::move(jndv);
  out.mfv[g] = std::move(jmfv);

  // Carry the other groups, rescaled to the new cardinality.
  auto carry = [&](const HistFactor& src, double old_card) {
    for (const auto& [gid, count] : src.count) {
      if (out.count.count(gid) > 0) continue;
      std::vector<double> scaled = count;
      if (old_card > 0.0) {
        double factor = out.card / old_card;
        for (double& c : scaled) c *= factor;
      }
      out.count[gid] = std::move(scaled);
      out.ndv[gid] = src.ndv.at(gid);
      std::vector<double> mfv = src.mfv.at(gid);
      double dup = 1.0;
      for (double m : (&src == &left ? rm : lm)) dup = std::max(dup, m);
      for (double& m : mfv) m *= dup;
      out.mfv[gid] = std::move(mfv);
    }
  };
  carry(left, left.card);
  carry(right, right.card);
  return out;
}

double JoinHistEstimator::Estimate(const Query& query) const {
  if (query.NumTables() == 0) return 0.0;
  std::vector<QueryKeyGroup> groups = query.KeyGroups();
  std::vector<HistFactor> leaves;
  for (size_t i = 0; i < query.NumTables(); ++i) {
    leaves.push_back(MakeLeaf(query, i, groups));
  }
  if (query.NumTables() == 1) return std::max(leaves[0].card, 1.0);

  std::vector<uint64_t> adj = query.AliasAdjacency();
  size_t start = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (leaves[i].card < leaves[start].card) start = i;
  }
  HistFactor current = std::move(leaves[start]);
  uint64_t remaining =
      ((query.NumTables() == 64) ? ~uint64_t{0}
                                 : (uint64_t{1} << query.NumTables()) - 1) &
      ~current.alias_mask;
  while (remaining != 0) {
    int best = -1;
    uint64_t m = remaining;
    while (m != 0) {
      size_t a = static_cast<size_t>(std::countr_zero(m));
      m &= m - 1;
      if ((adj[a] & current.alias_mask) == 0) continue;
      if (best < 0 ||
          leaves[a].card < leaves[static_cast<size_t>(best)].card) {
        best = static_cast<int>(a);
      }
    }
    if (best < 0) {
      throw std::invalid_argument("JoinHist: disconnected join graph");
    }
    std::vector<int> connecting;
    for (const auto& [gid, _] : leaves[static_cast<size_t>(best)].count) {
      if (current.count.count(gid) > 0) connecting.push_back(gid);
    }
    current = JoinStep(current, leaves[static_cast<size_t>(best)], connecting);
    remaining &= ~(uint64_t{1} << best);
  }
  return std::max(current.card, 1.0);
}

size_t JoinHistEstimator::ModelSizeBytes() const {
  size_t bytes = selectivity_->ModelSizeBytes();
  for (const auto& b : group_binnings_) bytes += b.MemoryBytes();
  for (const auto& [ref, stats] : bin_stats_) bytes += stats.MemoryBytes();
  for (const auto& [name, est] : conditional_) bytes += est->MemoryBytes();
  return bytes;
}

}  // namespace fj

#include "baselines/fanout_denorm.h"

#include <algorithm>

#include "exec/true_card.h"
#include "query/filter_eval.h"
#include "query/subplan.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fj {

std::string FanoutDenormEstimator::TemplateKey(const Query& query) {
  std::vector<std::string> parts;
  for (const auto& ref : query.tables()) {
    parts.push_back(ref.alias + ":" + ref.table);
  }
  std::sort(parts.begin(), parts.end());
  std::vector<std::string> joins;
  for (const auto& join : query.joins()) {
    std::string a = join.left.ToString();
    std::string b = join.right.ToString();
    joins.push_back(a < b ? a + "=" + b : b + "=" + a);
  }
  std::sort(joins.begin(), joins.end());
  std::string key;
  for (const auto& p : parts) key += p + ";";
  key += "|";
  for (const auto& j : joins) key += j + ";";
  return key;
}

FanoutDenormEstimator::FanoutDenormEstimator(
    const Database& db, const std::vector<Query>& workload, std::string name,
    FanoutDenormOptions options)
    : db_(&db), name_(std::move(name)), options_(options) {
  WallTimer timer;
  Rng rng(options_.seed);

  // Collect distinct join templates from every sub-plan of the workload
  // (the fanout methods must model all join patterns they will be asked
  // about, which is exactly the exponential blow-up the paper criticizes).
  std::vector<Query> to_train;
  std::unordered_map<std::string, bool> seen;
  for (const Query& q : workload) {
    if (q.HasSelfJoin() || q.IsCyclic()) continue;  // unsupported
    for (const Query& sub : EnumerateSubplans(q, 2).queries) {
      Query bare = sub;  // join structure only: strip filters
      for (const auto& ref : sub.tables()) {
        bare.SetFilter(ref.alias, Predicate::True());
      }
      std::string key = TemplateKey(bare);
      if (seen.emplace(key, true).second) to_train.push_back(bare);
    }
  }

  for (const Query& tmpl : to_train) {
    ExecStats stats;
    Relation joined;
    try {
      joined = ExecuteGreedy(*db_, tmpl, &stats, options_.max_output_tuples);
    } catch (const ExecutionOverflow&) {
      continue;  // template too large to denormalize; fall back at query time
    }
    TemplateModel model;
    model.join_size = static_cast<double>(joined.size());
    model.aliases = joined.aliases();
    for (const auto& alias : model.aliases) {
      model.tables.push_back(tmpl.TableOf(alias));
    }
    size_t want = std::min(options_.sample_tuples, joined.size());
    if (want > 0) {
      model.sample.reserve(want * joined.arity());
      for (size_t s : rng.SampleWithoutReplacement(joined.size(), want)) {
        const uint32_t* tuple = joined.Tuple(s);
        model.sample.insert(model.sample.end(), tuple,
                            tuple + joined.arity());
      }
    }
    templates_.emplace(TemplateKey(tmpl), std::move(model));
  }
  fallback_ = std::make_unique<PostgresEstimator>(db);
  train_seconds_ = timer.Seconds();
}

double FanoutDenormEstimator::Estimate(const Query& query) const {
  if (query.NumTables() == 1) {
    const TableRef& ref = query.tables()[0];
    double rows = static_cast<double>(db_->GetTable(ref.table).num_rows());
    return std::max(rows * fallback_->FilterSelectivity(query, ref.alias), 1.0);
  }
  Query bare = query;
  for (const auto& ref : query.tables()) {
    bare.SetFilter(ref.alias, Predicate::True());
  }
  auto it = templates_.find(TemplateKey(bare));
  if (it == templates_.end()) return fallback_->Estimate(query);

  const TemplateModel& model = it->second;
  size_t arity = model.aliases.size();
  size_t tuples = arity == 0 ? 0 : model.sample.size() / arity;
  if (tuples == 0) return 1.0;

  // Per-alias filter evaluated on the sampled denormalized tuples.
  std::vector<PredicatePtr> filters(arity);
  std::vector<const Table*> tables(arity);
  for (size_t a = 0; a < arity; ++a) {
    filters[a] = query.FilterFor(model.aliases[a]);
    tables[a] = &db_->GetTable(model.tables[a]);
  }
  size_t hits = 0;
  for (size_t t = 0; t < tuples; ++t) {
    bool ok = true;
    for (size_t a = 0; a < arity && ok; ++a) {
      ok = EvalRow(*tables[a], *filters[a], model.sample[t * arity + a]);
    }
    if (ok) ++hits;
  }
  // Zero sample hits bound the selectivity below ~1/|sample| rather than
  // proving emptiness; the half-row floor avoids the catastrophic
  // underestimates a hard zero would feed the optimizer.
  double sel = std::max(static_cast<double>(hits), 0.5) /
               static_cast<double>(tuples);
  return std::max(sel * model.join_size, 1.0);
}

size_t FanoutDenormEstimator::ModelSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, model] : templates_) {
    bytes += model.sample.size() * sizeof(uint32_t) + key.size() + 64;
  }
  return bytes;
}

}  // namespace fj

#include "baselines/postgres_estimator.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/timer.h"

namespace fj {

PostgresEstimator::PostgresEstimator(const Database& db,
                                     PostgresEstimatorOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  for (const std::string& name : db.TableNames()) RebuildTableStats(name);
  train_seconds_ = timer.Seconds();
}

double PostgresEstimator::RebuildTableStats(const std::string& table_name) {
  WallTimer timer;
  const Table& table = db_->GetTable(table_name);
  TableStats ts;
  ts.rows = table.num_rows();
  for (const auto& col : table.columns()) {
    ts.columns.push_back(col->name());
    ts.histograms.emplace_back(*col, options_.histogram_buckets);
  }
  stats_[table_name] = std::move(ts);
  return timer.Seconds();
}

double PostgresEstimator::ApplyInsert(const std::string& table_name,
                                      size_t /*first_new_row*/) {
  double seconds = RebuildTableStats(table_name);
  BumpStatsVersion();
  return seconds;
}

double PostgresEstimator::ApplyDelete(const std::string& table_name,
                                      size_t /*first_deleted_row*/) {
  double seconds = RebuildTableStats(table_name);
  BumpStatsVersion();
  return seconds;
}

double PostgresEstimator::FilterSelectivity(const Query& query,
                                            const std::string& alias) const {
  const std::string& table_name = query.TableOf(alias);
  const TableStats& ts = stats_.at(table_name);
  return EstimateSelectivity(db_->GetTable(table_name), ts.histograms,
                             ts.columns, *query.FilterFor(alias));
}

double PostgresEstimator::Estimate(const Query& query) const {
  // Cross product of filtered table sizes ...
  double card = 1.0;
  for (const auto& ref : query.tables()) {
    double rows = static_cast<double>(stats_.at(ref.table).rows);
    card *= std::max(rows * FilterSelectivity(query, ref.alias), 1.0);
  }
  // ... reduced by 1/max(NDV, NDV) per join condition (join-key uniformity).
  for (const auto& join : query.joins()) {
    const std::string& lt = query.TableOf(join.left.alias);
    const std::string& rt = query.TableOf(join.right.alias);
    auto ndv_of = [&](const std::string& table, const std::string& column) {
      const TableStats& ts = stats_.at(table);
      for (size_t i = 0; i < ts.columns.size(); ++i) {
        if (ts.columns[i] == column) {
          return std::max<uint64_t>(ts.histograms[i].distinct_count(), 1);
        }
      }
      return uint64_t{1};
    };
    uint64_t ndv = std::max(ndv_of(lt, join.left.column),
                            ndv_of(rt, join.right.column));
    card /= static_cast<double>(ndv);
  }
  return std::max(card, 1.0);
}

std::unique_ptr<PostgresEstimator> PostgresEstimator::MakeUntrained(
    const Database& db) {
  return std::unique_ptr<PostgresEstimator>(
      new PostgresEstimator(db, UntrainedTag{}));
}

void PostgresEstimator::Save(ByteWriter& w) const {
  w.U32(options_.histogram_buckets);
  w.F64(train_seconds_);
  auto sorted = SortedEntries(stats_);
  w.U32(static_cast<uint32_t>(sorted.size()));
  for (const auto* entry : sorted) {
    const TableStats& ts = entry->second;
    w.Str(entry->first);
    w.U64(ts.rows);
    w.U32(static_cast<uint32_t>(ts.columns.size()));
    for (size_t i = 0; i < ts.columns.size(); ++i) {
      w.Str(ts.columns[i]);
      ts.histograms[i].Save(w);
    }
  }
}

void PostgresEstimator::Load(ByteReader& r) {
  options_.histogram_buckets = r.U32();
  train_seconds_ = r.F64();
  uint32_t n_tables = r.CountU32(sizeof(uint32_t));
  stats_.clear();
  for (uint32_t t = 0; t < n_tables; ++t) {
    std::string table_name = r.Str();
    if (!db_->HasTable(table_name)) {
      throw std::invalid_argument(
          "postgres snapshot references unknown table " + table_name);
    }
    const Table& table = db_->GetTable(table_name);
    TableStats ts;
    ts.rows = r.U64();
    uint32_t n_cols = r.CountU32(sizeof(uint32_t));
    for (uint32_t c = 0; c < n_cols; ++c) {
      std::string column = r.Str();
      if (!table.HasColumn(column)) {
        throw std::invalid_argument(
            "postgres snapshot references unknown column " + table_name +
            "." + column);
      }
      ts.columns.push_back(std::move(column));
      ts.histograms.push_back(ColumnHistogram::LoadFrom(r));
    }
    stats_[std::move(table_name)] = std::move(ts);
  }
  for (const std::string& name : db_->TableNames()) {
    if (stats_.count(name) == 0) {
      throw std::invalid_argument(
          "postgres snapshot has no statistics for table " + name);
    }
  }
}

}  // namespace fj

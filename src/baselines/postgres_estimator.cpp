#include "baselines/postgres_estimator.h"

#include <algorithm>

#include "util/timer.h"

namespace fj {

PostgresEstimator::PostgresEstimator(const Database& db,
                                     PostgresEstimatorOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  for (const std::string& name : db.TableNames()) RebuildTableStats(name);
  train_seconds_ = timer.Seconds();
}

double PostgresEstimator::RebuildTableStats(const std::string& table_name) {
  WallTimer timer;
  const Table& table = db_->GetTable(table_name);
  TableStats ts;
  ts.rows = table.num_rows();
  for (const auto& col : table.columns()) {
    ts.columns.push_back(col->name());
    ts.histograms.emplace_back(*col, options_.histogram_buckets);
  }
  stats_[table_name] = std::move(ts);
  return timer.Seconds();
}

double PostgresEstimator::ApplyInsert(const std::string& table_name,
                                      size_t /*first_new_row*/) {
  double seconds = RebuildTableStats(table_name);
  BumpStatsVersion();
  return seconds;
}

double PostgresEstimator::ApplyDelete(const std::string& table_name,
                                      size_t /*first_deleted_row*/) {
  double seconds = RebuildTableStats(table_name);
  BumpStatsVersion();
  return seconds;
}

double PostgresEstimator::FilterSelectivity(const Query& query,
                                            const std::string& alias) const {
  const std::string& table_name = query.TableOf(alias);
  const TableStats& ts = stats_.at(table_name);
  return EstimateSelectivity(db_->GetTable(table_name), ts.histograms,
                             ts.columns, *query.FilterFor(alias));
}

double PostgresEstimator::Estimate(const Query& query) const {
  // Cross product of filtered table sizes ...
  double card = 1.0;
  for (const auto& ref : query.tables()) {
    double rows = static_cast<double>(stats_.at(ref.table).rows);
    card *= std::max(rows * FilterSelectivity(query, ref.alias), 1.0);
  }
  // ... reduced by 1/max(NDV, NDV) per join condition (join-key uniformity).
  for (const auto& join : query.joins()) {
    const std::string& lt = query.TableOf(join.left.alias);
    const std::string& rt = query.TableOf(join.right.alias);
    auto ndv_of = [&](const std::string& table, const std::string& column) {
      const TableStats& ts = stats_.at(table);
      for (size_t i = 0; i < ts.columns.size(); ++i) {
        if (ts.columns[i] == column) {
          return std::max<uint64_t>(ts.histograms[i].distinct_count(), 1);
        }
      }
      return uint64_t{1};
    };
    uint64_t ndv = std::max(ndv_of(lt, join.left.column),
                            ndv_of(rt, join.right.column));
    card /= static_cast<double>(ndv);
  }
  return std::max(card, 1.0);
}

size_t PostgresEstimator::ModelSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [name, ts] : stats_) {
    for (const auto& h : ts.histograms) bytes += h.MemoryBytes();
  }
  return bytes;
}

}  // namespace fj

#include "baselines/mscn_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace fj {
namespace {

// Canonical key of a join relation between two columns, orientation-free.
std::string JoinKey(const std::string& t1, const std::string& c1,
                    const std::string& t2, const std::string& c2) {
  std::string a = t1 + "." + c1;
  std::string b = t2 + "." + c2;
  return a < b ? a + "=" + b : b + "=" + a;
}

constexpr size_t kOpSlots = 6;  // CmpOp cardinality

size_t OpSlot(CmpOp op) { return static_cast<size_t>(op); }

}  // namespace

void MscnEstimator::BuildVocabulary(const Database& db) {
  for (const std::string& name : db.TableNames()) {
    table_slot_.emplace(name, table_slot_.size());
    const Table& table = db.GetTable(name);
    for (const auto& col : table.columns()) {
      std::string key = name + "." + col->name();
      column_slot_.emplace(key, column_slot_.size());
      int64_t lo, hi;
      ColumnRangeStat range;
      if (col->CodeRange(&lo, &hi) && hi > lo) {
        range.min_code = static_cast<double>(lo);
        range.max_code = static_cast<double>(hi);
      }
      column_range_.emplace(key, range);
    }
  }
  for (const auto& rel : db.join_relations()) {
    join_slot_.emplace(JoinKey(rel.left.table, rel.left.column,
                               rel.right.table, rel.right.column),
                       join_slot_.size());
  }
}

size_t MscnEstimator::FeatureDim() const {
  return table_slot_.size() + join_slot_.size() + column_slot_.size() +
         kOpSlots + 1;
}

std::vector<double> MscnEstimator::Featurize(const Query& query) const {
  std::vector<double> x(FeatureDim(), 0.0);
  size_t join_base = table_slot_.size();
  size_t pred_base = join_base + join_slot_.size();

  for (const auto& ref : query.tables()) {
    auto it = table_slot_.find(ref.table);
    if (it != table_slot_.end()) x[it->second] += 1.0;
  }
  for (const auto& join : query.joins()) {
    auto it = join_slot_.find(JoinKey(query.TableOf(join.left.alias),
                                      join.left.column,
                                      query.TableOf(join.right.alias),
                                      join.right.column));
    if (it != join_slot_.end()) x[join_base + it->second] += 1.0;
  }

  // Average the leaf-predicate features (set pooling).
  double leaves = 0.0;
  std::vector<double> pred(column_slot_.size() + kOpSlots + 1, 0.0);
  for (const auto& ref : query.tables()) {
    PredicatePtr filter = query.FilterFor(ref.alias);
    // Walk conjunctive structure; leaves of other shapes are treated as
    // opaque single features on their column.
    std::vector<const Predicate*> stack{filter.get()};
    while (!stack.empty()) {
      const Predicate* p = stack.back();
      stack.pop_back();
      switch (p->kind()) {
        case Predicate::Kind::kTrue:
          break;
        case Predicate::Kind::kAnd:
        case Predicate::Kind::kOr:
        case Predicate::Kind::kNot:
          for (const auto& c : p->children()) stack.push_back(c.get());
          break;
        default: {
          std::string key = ref.table + "." + p->column();
          auto cit = column_slot_.find(key);
          if (cit == column_slot_.end()) break;
          leaves += 1.0;
          pred[cit->second] += 1.0;
          if (p->kind() == Predicate::Kind::kCompare) {
            pred[column_slot_.size() + OpSlot(p->op())] += 1.0;
            const auto& range = column_range_.at(key);
            double code = static_cast<double>(p->value().i);
            double norm = (code - range.min_code) /
                          std::max(range.max_code - range.min_code, 1.0);
            pred[column_slot_.size() + kOpSlots] += std::clamp(norm, 0.0, 1.0);
          }
          break;
        }
      }
    }
  }
  if (leaves > 0.0) {
    for (double& v : pred) v /= leaves;
  }
  std::copy(pred.begin(), pred.end(), x.begin() + static_cast<long>(pred_base));
  return x;
}

MscnEstimator::MscnEstimator(const Database& db,
                             const std::vector<TrainingExample>& examples,
                             MscnOptions options)
    : db_(&db), options_(options) {
  WallTimer timer;
  BuildVocabulary(db);

  // Normalize log-cardinalities to [0, 1] for stable training.
  double max_log = 1.0;
  for (const auto& ex : examples) {
    max_log = std::max(max_log, std::log1p(std::max(ex.cardinality, 0.0)));
  }
  log_card_scale_ = max_log;

  mlp_ = std::make_unique<Mlp>(
      std::vector<size_t>{FeatureDim(), options_.hidden_units,
                          options_.hidden_units / 2, 1},
      options_.seed);

  std::vector<std::vector<double>> xs;
  std::vector<std::vector<double>> ys;
  xs.reserve(examples.size());
  for (const auto& ex : examples) {
    xs.push_back(Featurize(ex.query));
    ys.push_back({std::log1p(std::max(ex.cardinality, 0.0)) / log_card_scale_});
  }

  Rng rng(options_.seed);
  std::vector<size_t> idx(xs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&idx);
    for (size_t start = 0; start < idx.size(); start += options_.batch_size) {
      size_t end = std::min(start + options_.batch_size, idx.size());
      std::vector<std::vector<double>> bx, by;
      for (size_t i = start; i < end; ++i) {
        bx.push_back(xs[idx[i]]);
        by.push_back(ys[idx[i]]);
      }
      mlp_->TrainBatch(bx, by, options_.learning_rate);
    }
  }
  train_seconds_ = timer.Seconds();
}

double MscnEstimator::Estimate(const Query& query) const {
  double y = mlp_->Forward(Featurize(query))[0];
  double card = std::expm1(std::clamp(y, 0.0, 1.2) * log_card_scale_);
  return std::max(card, 1.0);
}

}  // namespace fj

#include "baselines/nn.h"

#include <cmath>
#include <stdexcept>

namespace fj {

Mlp::Mlp(std::vector<size_t> layer_sizes, uint64_t seed) {
  if (layer_sizes.size() < 2) {
    throw std::invalid_argument("Mlp needs at least input and output sizes");
  }
  Rng rng(seed);
  for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    Layer layer;
    layer.in = layer_sizes[l];
    layer.out = layer_sizes[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng.Gaussian() * scale;
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
  }
}

void Mlp::ForwardTrace(const std::vector<double>& x,
                       std::vector<std::vector<double>>* activations) const {
  activations->clear();
  activations->push_back(x);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const std::vector<double>& in = activations->back();
    std::vector<double> out(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      double s = layer.b[o];
      const double* wrow = &layer.w[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) s += wrow[i] * in[i];
      // ReLU on hidden layers, identity on the output layer.
      out[o] = (l + 1 < layers_.size()) ? std::max(s, 0.0) : s;
    }
    activations->push_back(std::move(out));
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  std::vector<std::vector<double>> activations;
  ForwardTrace(x, &activations);
  return activations.back();
}

double Mlp::TrainBatch(const std::vector<std::vector<double>>& xs,
                       const std::vector<std::vector<double>>& ys,
                       double learning_rate) {
  if (xs.empty()) return 0.0;
  // Gradient accumulators.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  double loss = 0.0;
  std::vector<std::vector<double>> activations;
  for (size_t n = 0; n < xs.size(); ++n) {
    ForwardTrace(xs[n], &activations);
    const std::vector<double>& out = activations.back();
    // dL/dout for MSE (0.5 factor folded in).
    std::vector<double> delta(out.size());
    for (size_t o = 0; o < out.size(); ++o) {
      double diff = out[o] - ys[n][o];
      loss += diff * diff;
      delta[o] = diff;
    }
    // Backprop.
    for (size_t li = layers_.size(); li-- > 0;) {
      Layer& layer = layers_[li];
      const std::vector<double>& in = activations[li];
      const std::vector<double>& act_out = activations[li + 1];
      // ReLU derivative for hidden layers.
      if (li + 1 < layers_.size()) {
        for (size_t o = 0; o < delta.size(); ++o) {
          if (act_out[o] <= 0.0) delta[o] = 0.0;
        }
      }
      for (size_t o = 0; o < layer.out; ++o) {
        gb[li][o] += delta[o];
        double* gwrow = &gw[li][o * layer.in];
        for (size_t i = 0; i < layer.in; ++i) gwrow[i] += delta[o] * in[i];
      }
      if (li > 0) {
        std::vector<double> prev_delta(layer.in, 0.0);
        for (size_t o = 0; o < layer.out; ++o) {
          const double* wrow = &layer.w[o * layer.in];
          for (size_t i = 0; i < layer.in; ++i) {
            prev_delta[i] += wrow[i] * delta[o];
          }
        }
        delta = std::move(prev_delta);
      }
    }
  }

  // Adam update.
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  ++adam_t_;
  double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
  double inv_n = 1.0 / static_cast<double>(xs.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    for (size_t i = 0; i < layer.w.size(); ++i) {
      double g = gw[l][i] * inv_n;
      layer.mw[i] = kBeta1 * layer.mw[i] + (1 - kBeta1) * g;
      layer.vw[i] = kBeta2 * layer.vw[i] + (1 - kBeta2) * g * g;
      layer.w[i] -= learning_rate * (layer.mw[i] / bc1) /
                    (std::sqrt(layer.vw[i] / bc2) + kEps);
    }
    for (size_t i = 0; i < layer.b.size(); ++i) {
      double g = gb[l][i] * inv_n;
      layer.mb[i] = kBeta1 * layer.mb[i] + (1 - kBeta1) * g;
      layer.vb[i] = kBeta2 * layer.vb[i] + (1 - kBeta2) * g * g;
      layer.b[i] -= learning_rate * (layer.mb[i] / bc1) /
                    (std::sqrt(layer.vb[i] / bc2) + kEps);
    }
  }
  return loss / static_cast<double>(xs.size());
}

size_t Mlp::ParameterCount() const {
  size_t n = 0;
  for (const Layer& l : layers_) n += l.w.size() + l.b.size();
  return n;
}

}  // namespace fj

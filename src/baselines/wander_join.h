// Wander join (Li et al., SIGMOD'16): random walks along the join path using
// per-key indexes, producing a Horvitz-Thompson estimate of the join size.
// The WJSample baseline of the paper's evaluation.
#pragma once

#include <unordered_map>
#include <vector>

#include "stats/cardinality_estimator.h"
#include "storage/database.h"
#include "util/rng.h"

namespace fj {

struct WanderJoinOptions {
  /// Number of random walks per (sub-)query estimate.
  size_t walks = 200;
  uint64_t seed = 99;
};

class WanderJoinEstimator : public CardinalityEstimator {
 public:
  WanderJoinEstimator(const Database& db, WanderJoinOptions options = {});

  /// Snapshot-loading path: binds to `db` without building the key
  /// indexes — Load() must run before any estimate.
  static std::unique_ptr<WanderJoinEstimator> MakeUntrained(
      const Database& db);

  std::string Name() const override { return "wjsample"; }
  double Estimate(const Query& query) const override;
  size_t ModelSizeBytes() const override;
  double TrainSeconds() const override { return train_seconds_; }

  /// Snapshot of the per-key walk indexes and the walk options. Note
  /// ModelSizeBytes() deliberately does NOT report this footprint: the
  /// paper charges the PK/FK indexes to the database, not the estimator.
  bool SupportsSnapshot() const override { return true; }
  void Save(ByteWriter& w) const override;
  void Load(ByteReader& r) override;

  /// The per-key indexes are maintained incrementally, like the PK/FK
  /// indexes of the paper's setup.
  bool SupportsUpdates() const override { return true; }

  /// Appends the new rows' key values to the updated table's indexes.
  /// O(|new rows|) and table-local. Bumps StatsVersion().
  double ApplyInsert(const std::string& table_name,
                     size_t first_new_row) override;

  /// Prunes row ids >= first_deleted_row from the truncated table's indexes
  /// (appends keep postings sorted, so each posting list is cut at a binary-
  /// search point). Table-local. Bumps StatsVersion().
  double ApplyDelete(const std::string& table_name,
                     size_t first_deleted_row) override;

 private:
  using KeyIndex = std::unordered_map<int64_t, std::vector<uint32_t>>;

  struct UntrainedTag {};
  WanderJoinEstimator(const Database& db, UntrainedTag) : db_(&db) {}

  const KeyIndex& IndexFor(const ColumnRef& ref) const;

  const Database* db_;  // not owned
  WanderJoinOptions options_;
  std::unordered_map<ColumnRef, KeyIndex, ColumnRefHash> indexes_;
  double train_seconds_ = 0.0;
};

}  // namespace fj

// Reproduces Figure 7: distribution of relative estimation errors
// (estimate / true) over all STATS-CEB sub-plan queries for Postgres, the
// FLAT analog, PessEst and FactorJoin. Expected shape: Postgres
// underestimates by orders of magnitude; PessEst never underestimates;
// FactorJoin upper-bounds >90% of sub-plans with bounds tighter than
// PessEst; FLAT analog most accurate but two-sided.
#include <cstdio>

#include "method_zoo.h"
#include "util/math_stats.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Figure 7: relative estimation errors on %s ==\n",
              w->name.c_str());

  TruthCache truth_cache;
  TablePrinter tp({"Method", "p5", "p25", "p50", "p75", "p95", "p99",
                   "underest.", "subplans"});
  auto add = [&](CardinalityEstimator* est) {
    ErrorStats e = CollectRelativeErrors(w->db, w->queries, est, &truth_cache);
    auto fmt = [&](double p) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", Percentile(e.rel_errors, p));
      return std::string(buf);
    };
    tp.AddRow({est->Name(), fmt(0.05), fmt(0.25), fmt(0.5), fmt(0.75),
               fmt(0.95), fmt(0.99),
               TablePrinter::FormatPercent(
                   e.total == 0 ? 0.0
                                : static_cast<double>(e.underestimates) /
                                      static_cast<double>(e.total)),
               std::to_string(e.total)});
  };

  PostgresEstimator postgres(w->db);
  add(&postgres);
  auto flat = MakeDenormAnalog(w->db, w->queries, "flat*", 40000);
  add(flat.get());
  PessimisticEstimator pessest(w->db);
  add(&pessest);
  auto fj = MakeFactorJoinStats(w->db);
  add(fj.get());

  tp.Print();
  std::printf("(rel. error = estimate/true; 1.0 is exact, <1 underestimates)\n");
  return 0;
}

// EstimatorService throughput: aggregate QPS and tail latency of the
// thread-pooled, cache-sharded serving layer vs. worker count, single-client
// vs. 64-client, on the STATS-CEB workload.
//
// Each request is what an optimizer actually issues: one batched
// EstimateSubplans over every connected sub-plan of a query. The cache is
// warmed first, so the measured regime is the serving hot path (fingerprint
// + sharded lookup per sub-plan) rather than first-touch model evaluation.
//
// A second section measures COLD multi-join sub-plan batches (cache
// disabled): raw estimator batch throughput through the service, with and
// without batch-aware splitting (EstimatorServiceOptions::
// split_batch_min_masks) — the number the arena/kernel hot-path work moves.
//
// A third section measures COLD START: training a model from scratch vs
// restoring it from a snapshot (stats/snapshot.h — the fj_server
// --load-model path), plus the snapshot's exact serialized size. A fourth
// drives a multi-model ModelRegistry (clients round-robin across models)
// to show per-model serving throughput under shared hardware.
//
// Environment knobs: FJ_BENCH_SCALE, FJ_BENCH_QUERIES (see bench_util.h),
// FJ_BENCH_REQUESTS (total requests per measured point, default 512).
// `--json out.json` writes the headline metrics machine-readably.
//
//   $ ./bench_service_throughput [--json service.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "factorjoin/estimator.h"
#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "obs/metrics_export.h"
#include "obs/metrics_registry.h"
#include "obs/request_trace.h"
#include "service/estimator_service.h"
#include "service/model_registry.h"
#include "stats/snapshot.h"

namespace fj::bench {
namespace {

struct LoadPoint {
  size_t workers = 0;
  size_t clients = 0;
  double qps = 0.0;
  /// Service-side per-request latency over exactly this run's interval.
  obs::HistogramSnapshot latency;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double p999_micros = 0.0;
  double hit_rate = 0.0;
  /// Peak of the pending-requests gauge (queued + in-flight) sampled
  /// during the run — how deep the service's backlog actually got.
  uint64_t max_pending = 0;
};

size_t EnvRequests(size_t fallback = 512) {
  const char* s = std::getenv("FJ_BENCH_REQUESTS");
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : fallback;
}


/// Drives `total_requests` blocking sub-plan batches from `clients` threads
/// round-robin over the workload and returns the aggregate numbers.
LoadPoint RunLoad(EstimatorService& service, const std::vector<Query>& queries,
                  const std::vector<std::vector<uint64_t>>& masks,
                  size_t clients, size_t total_requests) {
  size_t per_client = total_requests / clients;
  if (per_client == 0) per_client = 1;
  ServiceStats before = service.Stats();
  WallTimer timer;
  std::atomic<size_t> finished{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t r = 0; r < per_client; ++r) {
        size_t i = (c + r) % queries.size();
        service.EstimateSubplans(queries[i], masks[i]);
      }
      finished.fetch_add(1);
    });
  }
  // Sample the backlog gauge while the clients run.
  uint64_t max_pending = 0;
  while (finished.load() < clients) {
    max_pending = std::max(max_pending, service.Stats().pending_requests);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& t : threads) t.join();
  double seconds = timer.Seconds();

  ServiceStats after = service.Stats();
  LoadPoint point;
  point.workers = service.options().num_threads;
  point.clients = clients;
  point.qps = static_cast<double>(per_client * clients) / seconds;
  // Quantiles over exactly this run's requests: the service's latency
  // histograms subtract (obs::HistogramSnapshot::DeltaSince), so earlier
  // warmup/points on the same service don't pollute the tail.
  point.latency = after.latency.DeltaSince(before.latency);
  point.p50_micros = point.latency.ValueAtQuantile(0.50);
  point.p99_micros = point.latency.ValueAtQuantile(0.99);
  point.p999_micros = point.latency.ValueAtQuantile(0.999);
  uint64_t hits = after.cache.hits - before.cache.hits;
  uint64_t misses = after.cache.misses - before.cache.misses;
  point.hit_rate = hits + misses == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(hits + misses);
  point.max_pending = max_pending;
  return point;
}

}  // namespace
}  // namespace fj::bench

int main(int argc, char** argv) {
  using namespace fj;
  using namespace fj::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv, "service_throughput");

  auto workload = StatsWorkload(EnvQueries(32));
  FactorJoinConfig config;
  FactorJoinEstimator estimator(workload->db, config);
  std::printf("trained factorjoin in %.1f ms on %s (%zu queries), "
              "hardware_concurrency=%u\n",
              estimator.TrainSeconds() * 1e3, workload->name.c_str(),
              workload->queries.size(), std::thread::hardware_concurrency());

  std::vector<std::vector<uint64_t>> masks;
  size_t total_subplans = 0;
  for (const Query& q : workload->queries) {
    masks.push_back(EnumerateConnectedSubsets(q, 1));
    total_subplans += masks.back().size();
  }
  std::printf("%zu sub-plans across the workload (avg %.1f per query)\n\n",
              total_subplans,
              static_cast<double>(total_subplans) /
                  static_cast<double>(workload->queries.size()));

  size_t requests = EnvRequests();
  TablePrinter tp({"Workers", "Clients", "QPS", "p50 (us)", "p99 (us)",
                   "p999 (us)", "Hit rate", "Peak pending"});
  double qps_1worker = 0.0;
  double qps_8worker = 0.0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    EstimatorServiceOptions options;
    options.num_threads = workers;
    options.queue_capacity = 256;
    options.cache_capacity = 1 << 18;
    EstimatorService service(estimator, options);

    // Warm: every sub-plan of every query enters the cache once.
    for (size_t i = 0; i < workload->queries.size(); ++i) {
      service.EstimateSubplans(workload->queries[i], masks[i]);
    }

    for (size_t clients : {size_t{1}, size_t{64}}) {
      LoadPoint p =
          RunLoad(service, workload->queries, masks, clients, requests);
      tp.AddRow({std::to_string(p.workers), std::to_string(p.clients),
                 Fmt(p.qps, 0),
                 Fmt(p.p50_micros, 1),
                 Fmt(p.p99_micros, 1),
                 Fmt(p.p999_micros, 1),
                 TablePrinter::FormatPercent(p.hit_rate),
                 std::to_string(p.max_pending)});
      if (clients == 64 && workers == 1) qps_1worker = p.qps;
      if (clients == 64 && workers == 8) qps_8worker = p.qps;
      report.Add("warm_qps_w" + std::to_string(workers) + "_c" +
                     std::to_string(clients),
                 p.qps, "1/s");
    }
  }
  tp.Print();

  double speedup = qps_1worker > 0.0 ? qps_8worker / qps_1worker : 0.0;
  std::printf("\n64-client aggregate speedup, 8 workers vs 1: %.2fx\n",
              speedup);
  if (std::thread::hardware_concurrency() < 8) {
    std::printf("(note: only %u hardware threads available; worker scaling "
                "is core-bound on this machine)\n",
                std::thread::hardware_concurrency());
  }

  // ---- Cold multi-join sub-plan batches (cache disabled): the estimator
  // hot path behind the serving layer, the regime the arena/kernel work
  // targets. Split off vs on isolates batch-aware scheduling (parallel
  // gains require idle workers, i.e. more cores than clients keep busy).
  std::printf("\ncold multi-join batches (cache disabled, %zu requests):\n",
              requests / 4);
  TablePrinter cold_tp({"Split", "Batches/s", "Sub-plans/s", "p99 (us)"});
  double cold_qps_nosplit = 0.0;
  for (bool split : {false, true}) {
    EstimatorServiceOptions options;
    options.num_threads = 4;
    options.cache_enabled = false;
    options.split_batch_min_masks = split ? 8 : 0;
    EstimatorService service(estimator, options);
    LoadPoint p = RunLoad(service, workload->queries, masks, 8, requests / 4);
    double subplans_per_sec =
        p.qps * static_cast<double>(total_subplans) /
        static_cast<double>(workload->queries.size());
    cold_tp.AddRow({split ? "on" : "off", Fmt(p.qps, 0),
                    Fmt(subplans_per_sec, 0), Fmt(p.p99_micros, 1)});
    if (!split) {
      cold_qps_nosplit = p.qps;
    } else if (cold_qps_nosplit > 0.0) {
      std::printf("  split vs unsplit: %.2fx (parallel gains need idle "
                  "cores)\n", p.qps / cold_qps_nosplit);
      report.Add("cold_split_vs_nosplit", p.qps / cold_qps_nosplit);
    }
    report.Add(split ? "cold_batches_per_sec_split"
                     : "cold_batches_per_sec_nosplit",
               p.qps, "1/s");
    report.Add(split ? "cold_subplans_per_sec_split"
                     : "cold_subplans_per_sec_nosplit",
               subplans_per_sec, "1/s");
    if (split) {
      ServiceStats stats = service.Stats();
      std::printf("  (split %llu batches into %llu chunks)\n",
                  static_cast<unsigned long long>(stats.batches_split),
                  static_cast<unsigned long long>(stats.split_chunks));
    }
  }
  cold_tp.Print();

  // ---- Tracing overhead: the identical warm load with per-stage tracing
  // on vs off (EstimatorServiceOptions::enable_tracing). Tracing adds a
  // handful of steady-clock reads per request; the acceptance target is
  // <2% throughput cost. Both services live side by side and trials
  // alternate off/on (best-of-4 each), so scheduler drift across the run
  // hits both modes alike instead of masquerading as overhead.
  std::printf("\ntracing overhead (warm, 4 workers, 64 clients):\n");
  {
    auto make_service = [&](bool tracing) {
      EstimatorServiceOptions options;
      options.num_threads = 4;
      options.queue_capacity = 256;
      options.cache_capacity = 1 << 18;
      options.enable_tracing = tracing;
      auto service = std::make_unique<EstimatorService>(estimator, options);
      for (size_t i = 0; i < workload->queries.size(); ++i) {
        service->EstimateSubplans(workload->queries[i], masks[i]);
      }
      // One throwaway pass per service so neither mode pays first-run
      // cache/allocator warmup inside a measured trial.
      RunLoad(*service, workload->queries, masks, 64, requests);
      return service;
    };
    auto off = make_service(false);
    auto on = make_service(true);
    double qps_off = 0.0;
    double qps_on = 0.0;
    for (int run = 0; run < 4; ++run) {
      LoadPoint p_off = RunLoad(*off, workload->queries, masks, 64, requests);
      qps_off = std::max(qps_off, p_off.qps);
      LoadPoint p_on = RunLoad(*on, workload->queries, masks, 64, requests);
      qps_on = std::max(qps_on, p_on.qps);
    }
    ServiceStats traced_stats = on->Stats();
    // Exercise the metrics pipeline against the live traced service: one
    // collector snapshot rendered both ways, as a scraper and a bench
    // harness would consume it.
    obs::MetricsRegistry metrics;
    obs::ExportService(&metrics, "bench", *on);
    std::printf("  metrics scrape: %zu bytes prometheus, %zu bytes json\n",
                metrics.RenderPrometheus().size(),
                metrics.DumpJson().size());
    TablePrinter st_tp(
        {"Stage", "Count", "p50 (us)", "p99 (us)", "p999 (us)"});
    for (size_t i = 0; i < obs::kNumStages; ++i) {
      const obs::HistogramSnapshot& h = traced_stats.stages[i];
      if (h.count == 0) continue;
      st_tp.AddRow({obs::StageName(static_cast<obs::Stage>(i)),
                    std::to_string(h.count), Fmt(h.ValueAtQuantile(0.50), 1),
                    Fmt(h.ValueAtQuantile(0.99), 1),
                    Fmt(h.ValueAtQuantile(0.999), 1)});
    }
    st_tp.Print();
    double overhead_pct =
        qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
    std::printf("  tracing on: %.0f QPS, off: %.0f QPS -> overhead %.2f%% "
                "(target <2%%)\n",
                qps_on, qps_off, overhead_pct);
    report.Add("tracing_overhead_pct", overhead_pct, "%");
    report.Add("traced_qps", qps_on, "1/s");
    report.Add("untraced_qps", qps_off, "1/s");
    AddLatencyQuantiles(&report, "traced", traced_stats.latency);
  }

  // ---- Flight recorder overhead: the same alternating best-of-4
  // discipline, tracing on for both services, one additionally appending
  // every 16th request (plus any slow offenders) into a FlightRecorder
  // ring — the fj_server default. Isolates the recorder's serving-path
  // cost: one fetch_add plus, on sampled requests, a per-slot spinlock
  // and a ~120-byte copy. Must sit under the same <2% bar as tracing.
  std::printf("\nflight recorder overhead (warm, 4 workers, 64 clients):\n");
  {
    obs::FlightRecorder recorder(256);
    auto make_service = [&](bool record) {
      EstimatorServiceOptions options;
      options.num_threads = 4;
      options.queue_capacity = 256;
      options.cache_capacity = 1 << 18;
      options.enable_tracing = true;
      if (record) {
        options.flight_recorder = &recorder;
        options.flight_sample_every = 16;
      }
      auto service = std::make_unique<EstimatorService>(estimator, options);
      for (size_t i = 0; i < workload->queries.size(); ++i) {
        service->EstimateSubplans(workload->queries[i], masks[i]);
      }
      RunLoad(*service, workload->queries, masks, 64, requests);
      return service;
    };
    auto off = make_service(false);
    auto on = make_service(true);
    double qps_off = 0.0;
    double qps_on = 0.0;
    for (int run = 0; run < 4; ++run) {
      LoadPoint p_off = RunLoad(*off, workload->queries, masks, 64, requests);
      qps_off = std::max(qps_off, p_off.qps);
      LoadPoint p_on = RunLoad(*on, workload->queries, masks, 64, requests);
      qps_on = std::max(qps_on, p_on.qps);
    }
    double overhead_pct =
        qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
    std::printf("  recorder on: %.0f QPS, off: %.0f QPS -> overhead %.2f%% "
                "(target <2%%); %llu records appended, dump %zu bytes\n",
                qps_on, qps_off, overhead_pct,
                static_cast<unsigned long long>(recorder.appended()),
                recorder.DumpJson(16).size());
    report.Add("flight_overhead_pct", overhead_pct, "%");
    report.Add("flight_records_appended",
               static_cast<double>(recorder.appended()));
  }

  // ---- Cold start: train from scratch vs restore a snapshot (the
  // fj_server --load-model path). Load skips binning, scans, and model
  // training entirely — it only decodes and re-wires state — so serving
  // can restart in milliseconds on models that took seconds to train.
  std::printf("\ncold start (train vs snapshot load):\n");
  {
    WallTimer train_timer;
    FactorJoinEstimator fresh(workload->db, config);
    double train_ms = train_timer.Seconds() * 1e3;

    WallTimer serialize_timer;
    std::vector<uint8_t> snapshot = SerializeEstimator(estimator);
    double serialize_ms = serialize_timer.Seconds() * 1e3;

    WallTimer load_timer;
    std::unique_ptr<CardinalityEstimator> loaded =
        DeserializeEstimator(workload->db, snapshot);
    double load_ms = load_timer.Seconds() * 1e3;

    TablePrinter cs_tp({"Path", "ms"});
    cs_tp.AddRow({"train from scratch", Fmt(train_ms, 1)});
    cs_tp.AddRow({"serialize (save)", Fmt(serialize_ms, 1)});
    cs_tp.AddRow({"deserialize (load)", Fmt(load_ms, 1)});
    cs_tp.Print();
    std::printf("  snapshot: %zu bytes (exact model size %zu bytes); "
                "load is %.1fx faster than retraining\n",
                snapshot.size(), estimator.ModelSizeBytes(),
                load_ms > 0.0 ? train_ms / load_ms : 0.0);
    report.Add("coldstart_train_ms", train_ms, "ms");
    report.Add("coldstart_load_ms", load_ms, "ms");
    report.Add("coldstart_train_over_load",
               load_ms > 0.0 ? train_ms / load_ms : 0.0);
    report.Add("snapshot_bytes", static_cast<double>(snapshot.size()), "B");
  }

  // ---- Multi-model serving: one ModelRegistry fronting N copies of the
  // model (each its own service, cache, and epochs — the fj_server
  // --load-model deployment), 64 clients round-robin across models. Warm
  // caches, 2 workers per model: how much aggregate throughput costs as
  // one server fans out over more models on fixed hardware.
  std::printf("\nmulti-model serving (64 clients round-robin, warm):\n");
  {
    std::vector<uint8_t> snapshot = SerializeEstimator(estimator);
    TablePrinter mm_tp({"Models", "Aggregate QPS", "Per-model QPS"});
    for (size_t num_models : {size_t{1}, size_t{2}, size_t{4}}) {
      ModelRegistry registry;
      std::vector<EstimatorService*> services;
      for (size_t m = 0; m < num_models; ++m) {
        EstimatorServiceOptions options;
        options.num_threads = 2;
        options.queue_capacity = 256;
        options.cache_capacity = 1 << 18;
        std::string name = "m";
        name += std::to_string(m);
        services.push_back(&registry.AddModel(
            name, DeserializeEstimator(workload->db, snapshot), options));
      }
      for (EstimatorService* service : services) {
        for (size_t i = 0; i < workload->queries.size(); ++i) {
          service->EstimateSubplans(workload->queries[i], masks[i]);
        }
      }
      size_t clients = 64;
      size_t per_client = std::max<size_t>(requests / clients, 1);
      WallTimer timer;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (size_t r = 0; r < per_client; ++r) {
            size_t i = (c + r) % workload->queries.size();
            services[(c + r) % services.size()]->EstimateSubplans(
                workload->queries[i], masks[i]);
          }
        });
      }
      for (auto& t : threads) t.join();
      double qps =
          static_cast<double>(per_client * clients) / timer.Seconds();
      mm_tp.AddRow({std::to_string(num_models), Fmt(qps, 0),
                    Fmt(qps / static_cast<double>(num_models), 0)});
      std::string metric = "multimodel_qps_m";
      metric += std::to_string(num_models);
      report.Add(metric, qps, "1/s");
    }
    mm_tp.Print();
  }

  report.Add("warm_speedup_8v1_workers", speedup);
  report.Write();
  return 0;
}

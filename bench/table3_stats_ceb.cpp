// Reproduces Table 3: end-to-end performance of all CardEst methods on the
// STATS-CEB(-like) workload. Expected shape (paper): Postgres slowest among
// the serious contenders, TrueCard optimal, FactorJoin within a few percent
// of TrueCard with Postgres-like planning time; learned data-driven analogs
// close on execution but heavier; WJSample worst; bound-based methods good
// execution, PessEst with outsized planning time.
#include <cstdio>

#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Table 3: end-to-end on %s (%zu rows, %zu queries) ==\n",
              w->name.c_str(), w->db.TotalRows(), w->queries.size());

  std::vector<MethodRow> rows;

  PostgresEstimator postgres(w->db);
  rows.push_back(RunMethod(w->db, w->queries, &postgres));

  {
    TrueCardEstimator truecard(w->db);
    MethodRow r = RunMethod(w->db, w->queries, &truecard,
                            /*charge_planning=*/false);
    r.name = "truecard(optimal)";
    rows.push_back(std::move(r));
  }
  {
    JoinHistOptions o;
    o.num_bins = 100;
    JoinHistEstimator joinhist(w->db, o);
    rows.push_back(RunMethod(w->db, w->queries, &joinhist));
  }
  {
    WanderJoinOptions o;
    o.walks = 400;
    WanderJoinEstimator wj(w->db, o);
    rows.push_back(RunMethod(w->db, w->queries, &wj));
  }
  {
    StatsCebOptions shadow_opts;
    shadow_opts.scale = EnvScale();
    shadow_opts.seed = 77;  // shadow workload for supervised training
    shadow_opts.num_queries = 60;
    auto shadow = MakeStatsCeb(shadow_opts);
    auto examples = MscnTrainingSet(w->db, *shadow);
    MscnEstimator mscn(w->db, examples);
    rows.push_back(RunMethod(w->db, w->queries, &mscn));
  }
  {
    auto bayescard = MakeDenormAnalog(w->db, w->queries, "bayescard*", 2000);
    rows.push_back(RunMethod(w->db, w->queries, bayescard.get()));
    auto deepdb = MakeDenormAnalog(w->db, w->queries, "deepdb*", 10000);
    rows.push_back(RunMethod(w->db, w->queries, deepdb.get()));
    auto flat = MakeDenormAnalog(w->db, w->queries, "flat*", 40000);
    rows.push_back(RunMethod(w->db, w->queries, flat.get()));
  }
  {
    PessimisticEstimator pessest(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &pessest));
  }
  {
    UBlockEstimator ublock(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &ublock));
  }
  {
    auto factorjoin = MakeFactorJoinStats(w->db);
    rows.push_back(RunMethod(w->db, w->queries, factorjoin.get()));
  }

  PrintEndToEndTable(rows, "postgres");
  std::printf("\n(learned data-driven analogs marked *; see DESIGN.md)\n");
  return 0;
}

// Reproduces Table 6: binning strategies (equal-width vs equal-depth vs
// GBSA) at k=100. Expected shape: GBSA clearly tighter bounds (50/95/99th
// percentile relative error) and better end-to-end time.
#include <cstdio>

#include "factorjoin/estimator.h"
#include "method_zoo.h"
#include "util/math_stats.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Table 6: binning strategies on %s ==\n", w->name.c_str());

  TablePrinter tp({"Algorithm", "End-to-end", "Improvement", "p50 err",
                   "p95 err", "p99 err"});
  TruthCache truth_cache;
  double postgres_total = 0.0;
  {
    PostgresEstimator postgres(w->db);
    postgres_total = SimulatedTotalSeconds(
        RunWorkloadEndToEnd(w->db, w->queries, &postgres, BenchE2eOptions()));
  }

  for (BinningStrategy strategy :
       {BinningStrategy::kEqualWidth, BinningStrategy::kEqualDepth,
        BinningStrategy::kGbsa}) {
    FactorJoinConfig cfg;
    cfg.num_bins = 100;
    cfg.binning = strategy;
    cfg.estimator = TableEstimatorKind::kBayesNet;
    FactorJoinEstimator fj(w->db, cfg);
    auto run = RunWorkloadEndToEnd(w->db, w->queries, &fj, BenchE2eOptions());
    auto errors = CollectRelativeErrors(w->db, w->queries, &fj, &truth_cache);
    char p50[32], p95[32], p99[32];
    std::snprintf(p50, sizeof(p50), "%.1f", Percentile(errors.rel_errors, 0.5));
    std::snprintf(p95, sizeof(p95), "%.1f", Percentile(errors.rel_errors, 0.95));
    std::snprintf(p99, sizeof(p99), "%.1f", Percentile(errors.rel_errors, 0.99));
    tp.AddRow({BinningStrategyName(strategy),
               TablePrinter::FormatSeconds(SimulatedTotalSeconds(run)),
               TablePrinter::FormatPercent(
                   (postgres_total - SimulatedTotalSeconds(run)) /
                   std::max(postgres_total, 1e-9)),
               p50, p95, p99});
  }
  tp.Print();
  return 0;
}

// Micro-benchmark for the paper's headline efficiency claim: FactorJoin can
// estimate ~10,000 sub-plan queries within one second (Section 6.2).
// Measures per-sub-plan estimation latency of FactorJoin's progressive
// algorithm vs estimating every sub-plan independently (the >10x saving of
// Section 5.2), and vs PessEst's per-estimate cost.
#include <benchmark/benchmark.h>

#include "baselines/pessimistic_estimator.h"
#include "baselines/postgres_estimator.h"
#include "factorjoin/estimator.h"
#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

namespace {

struct Context {
  std::unique_ptr<Workload> workload;
  std::unique_ptr<FactorJoinEstimator> factorjoin;
  std::unique_ptr<PostgresEstimator> postgres;
  std::unique_ptr<PessimisticEstimator> pessest;
  std::vector<std::vector<uint64_t>> masks;  // per query
};

Context* GetContext() {
  static Context* ctx = [] {
    auto* c = new Context();
    ImdbJobOptions o;
    o.scale = EnvScale();
    o.num_queries = 30;
    c->workload = MakeImdbJob(o);
    c->factorjoin = MakeFactorJoinImdb(c->workload->db);
    c->postgres = std::make_unique<PostgresEstimator>(c->workload->db);
    c->pessest = std::make_unique<PessimisticEstimator>(c->workload->db);
    for (const Query& q : c->workload->queries) {
      c->masks.push_back(EnumerateConnectedSubsets(q, 1));
    }
    return c;
  }();
  return ctx;
}

void BM_FactorJoinProgressive(benchmark::State& state) {
  Context* c = GetContext();
  size_t subplans = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < c->workload->queries.size(); ++i) {
      auto cards = c->factorjoin->EstimateSubplans(c->workload->queries[i],
                                                   c->masks[i]);
      benchmark::DoNotOptimize(cards);
      subplans += c->masks[i].size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(subplans));
}
BENCHMARK(BM_FactorJoinProgressive)->Unit(benchmark::kMillisecond);

void BM_FactorJoinIndependent(benchmark::State& state) {
  Context* c = GetContext();
  size_t subplans = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < c->workload->queries.size(); ++i) {
      const Query& q = c->workload->queries[i];
      for (uint64_t mask : c->masks[i]) {
        double card = c->factorjoin->Estimate(q.InducedSubquery(mask));
        benchmark::DoNotOptimize(card);
        ++subplans;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(subplans));
}
BENCHMARK(BM_FactorJoinIndependent)->Unit(benchmark::kMillisecond);

void BM_PostgresSubplans(benchmark::State& state) {
  Context* c = GetContext();
  size_t subplans = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < c->workload->queries.size(); ++i) {
      auto cards = c->postgres->EstimateSubplans(c->workload->queries[i],
                                                 c->masks[i]);
      benchmark::DoNotOptimize(cards);
      subplans += c->masks[i].size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(subplans));
}
BENCHMARK(BM_PostgresSubplans)->Unit(benchmark::kMillisecond);

void BM_PessEstSubplans(benchmark::State& state) {
  Context* c = GetContext();
  // PessEst is orders of magnitude slower; only the first few queries.
  size_t subplans = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < 3 && i < c->workload->queries.size(); ++i) {
      auto cards = c->pessest->EstimateSubplans(c->workload->queries[i],
                                                c->masks[i]);
      benchmark::DoNotOptimize(cards);
      subplans += c->masks[i].size();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(subplans));
}
BENCHMARK(BM_PessEstSubplans)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmark for the paper's headline efficiency claim: FactorJoin can
// estimate ~10,000 sub-plan queries within one second (Section 6.2).
// Measures per-sub-plan estimation latency of FactorJoin's progressive
// algorithm vs estimating every sub-plan independently (the >10x saving of
// Section 5.2), vs the shared-leaf session path (PrepareSubplans, what the
// serving layer's batch splitter runs per chunk), and vs Postgres/PessEst
// per-estimate costs.
//
// Self-timed passes over the whole workload (no external benchmark library):
// each case is warmed once, then repeated until kMinSeconds of wall time or
// kMaxPasses passes, whichever comes first. Deterministic workload; numbers
// vary with the machine but ratios are stable.
//
// Environment knobs: FJ_BENCH_SCALE, FJ_BENCH_QUERIES (bench_util.h).
// `--json out.json` writes the headline metrics machine-readably.
//
//   $ ./bench_micro_latency [--json micro.json]
#include <functional>

#include "baselines/pessimistic_estimator.h"
#include "baselines/postgres_estimator.h"
#include "factorjoin/estimator.h"
#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

namespace {

constexpr double kMinSeconds = 0.4;
constexpr int kMaxPasses = 200;

struct CaseResult {
  double ms_per_pass = 0.0;
  double subplans_per_sec = 0.0;
};

/// Times `pass` (one full-workload sweep producing `subplans_per_pass`
/// estimates): one warmup, then repeat to kMinSeconds / kMaxPasses.
CaseResult TimeCase(size_t subplans_per_pass,
                    const std::function<void()>& pass) {
  pass();  // warmup
  WallTimer timer;
  int passes = 0;
  do {
    pass();
    ++passes;
  } while (timer.Seconds() < kMinSeconds && passes < kMaxPasses);
  double seconds = timer.Seconds();
  CaseResult result;
  result.ms_per_pass = seconds / passes * 1e3;
  result.subplans_per_sec =
      static_cast<double>(subplans_per_pass) * passes / seconds;
  return result;
}


}  // namespace

int main(int argc, char** argv) {
  JsonReport report = JsonReport::FromArgs(argc, argv, "micro_latency");

  ImdbJobOptions options;
  options.scale = EnvScale();
  options.num_queries = EnvQueries(30);
  auto workload = MakeImdbJob(options);
  auto factorjoin = MakeFactorJoinImdb(workload->db);
  PostgresEstimator postgres(workload->db);
  PessimisticEstimator pessest(workload->db);

  std::vector<std::vector<uint64_t>> masks;
  size_t total_subplans = 0;
  for (const Query& q : workload->queries) {
    masks.push_back(EnumerateConnectedSubsets(q, 1));
    total_subplans += masks.back().size();
  }
  std::printf("%s: %zu queries, %zu sub-plans per pass (scale %.2f)\n\n",
              workload->name.c_str(), workload->queries.size(),
              total_subplans, options.scale);

  const auto& queries = workload->queries;

  // Progressive batches: the optimizer-facing EstimateSubplans hot path
  // (cold — leaf factors rebuilt per batch).
  CaseResult progressive = TimeCase(total_subplans, [&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto cards = factorjoin->EstimateSubplans(queries[i], masks[i]);
      DoNotOptimizeAway(cards.size());
    }
  });

  // Shared-leaf session: leaves prepared once per query, masks estimated
  // against them — the per-chunk cost of the service's batch splitter.
  CaseResult session = TimeCase(total_subplans, [&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto s = factorjoin->PrepareSubplans(queries[i]);
      auto cards = s->EstimateSubplans(masks[i]);
      DoNotOptimizeAway(cards.size());
    }
  });

  // Every sub-plan independently (the >10x saving of Section 5.2).
  CaseResult independent = TimeCase(total_subplans, [&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      for (uint64_t mask : masks[i]) {
        DoNotOptimizeAway(
            factorjoin->Estimate(queries[i].InducedSubquery(mask)));
      }
    }
  });

  CaseResult pg = TimeCase(total_subplans, [&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto cards = postgres.EstimateSubplans(queries[i], masks[i]);
      DoNotOptimizeAway(cards.size());
    }
  });

  // PessEst is orders of magnitude slower; only the first few queries.
  size_t pessest_queries = std::min<size_t>(3, queries.size());
  size_t pessest_subplans = 0;
  for (size_t i = 0; i < pessest_queries; ++i) {
    pessest_subplans += masks[i].size();
  }
  CaseResult pe = TimeCase(pessest_subplans, [&] {
    for (size_t i = 0; i < pessest_queries; ++i) {
      auto cards = pessest.EstimateSubplans(queries[i], masks[i]);
      DoNotOptimizeAway(cards.size());
    }
  });

  TablePrinter tp({"Case", "ms/pass", "Sub-plans/s"});
  tp.AddRow({"factorjoin progressive", Fmt(progressive.ms_per_pass, 2),
             Fmt(progressive.subplans_per_sec, 0)});
  tp.AddRow({"factorjoin session (shared leaves)", Fmt(session.ms_per_pass, 2),
             Fmt(session.subplans_per_sec, 0)});
  tp.AddRow({"factorjoin independent", Fmt(independent.ms_per_pass, 2),
             Fmt(independent.subplans_per_sec, 0)});
  tp.AddRow({"postgres", Fmt(pg.ms_per_pass, 2), Fmt(pg.subplans_per_sec, 0)});
  tp.AddRow({"pessest (3 queries)", Fmt(pe.ms_per_pass, 2),
             Fmt(pe.subplans_per_sec, 0)});
  tp.Print();
  std::printf("\nprogressive vs independent speedup: %.1fx\n",
              independent.ms_per_pass / progressive.ms_per_pass);

  report.Add("progressive_ms_per_pass", progressive.ms_per_pass, "ms");
  report.Add("progressive_subplans_per_sec", progressive.subplans_per_sec,
             "1/s");
  report.Add("session_ms_per_pass", session.ms_per_pass, "ms");
  report.Add("independent_ms_per_pass", independent.ms_per_pass, "ms");
  report.Add("postgres_ms_per_pass", pg.ms_per_pass, "ms");
  report.Add("pessest_ms_per_pass", pe.ms_per_pass, "ms");
  report.Write();
  return 0;
}

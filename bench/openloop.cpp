// Open-loop latency under load: offered-load sweeps against the serving
// tier with coordinated omission avoided (workload/openloop.h) — the SLO
// curves the closed-loop benches structurally cannot show. A closed-loop
// driver's next request waits for the last, so queueing delay vanishes
// from its numbers; here every request is timestamped at its *scheduled*
// arrival and a service running behind the schedule pays the lateness in
// recorded latency.
//
// Four sections:
//   1. In-process sweep: saturation probe measures capacity C, then
//      constant-rate points at {25, 50, 75, 100, 125}% of C against the
//      in-process EstimatorService. Past 100% the p99/p999 blow up — that
//      knee is the headline. An SLO section then replays each point's
//      histogram through obs::SloTracker and checks the burn rate crosses
//      1 exactly where the offered load crosses C.
//   2. Remote sweep: the same service behind EstimatorServer/Client over
//      loopback TCP, driven through the client's completion-callback hook.
//   3. Mixed poisson traffic: poisson arrivals at 10% of C with a 2%
//      update mix (ApplyInsert/ApplyDelete + NotifyUpdate through the full
//      versioned-statistics protocol) — tail latency when reads share the
//      service with cache-invalidating writes. Each update quiesces the
//      service (~ms), so read capacity under a write mix is far below C;
//      the tail shows the stalls. Runs last: it mutates the tables.
//
// Environment knobs: FJ_BENCH_SCALE, FJ_BENCH_QUERIES (bench_util.h),
// FJ_OPENLOOP_SECONDS (seconds per sweep point, default 0.4),
// FJ_OPENLOOP_PROBE_OPS (saturation-probe requests, default 4000).
// `--json out.json` writes offered/achieved QPS and p50/p99/p999 per
// point via the shared latency-curve helpers.
//
//   $ ./bench_openloop [--json openloop.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "factorjoin/estimator.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/slo.h"
#include "service/estimator_service.h"
#include "workload/loadgen.h"
#include "workload/openloop.h"

namespace fj::bench {
namespace {

double EnvSeconds(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? std::atof(s) : fallback;
}

size_t EnvOps(const char* name, size_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : fallback;
}

/// Offered rate far past any plausible capacity: every arrival is
/// immediately due, so the dispatcher submits as fast as the service
/// accepts (the bounded queue backpressures) and achieved QPS is the
/// service's capacity.
constexpr double kProbeRate = 2e6;

OpenLoopResult RunPoint(const Workload& workload, LoadTarget* target,
                        const ArrivalSchedule& schedule, size_t num_ops,
                        uint64_t seed) {
  LoadGenOptions options;
  options.seed = seed;
  options.schedule = schedule;
  options.num_ops = num_ops;
  Trace trace = GenerateTrace(workload, options);
  return RunOpenLoop(trace, workload.queries, target);
}

/// Saturation probe + constant-rate sweep at fractions of the probed
/// capacity; prints one table section and emits one load point per sweep
/// entry under `<prefix>_p<i>`. Returns the per-fraction results (indexed
/// like `fractions` below — [2] is 75%, [4] is 125%) so the SLO section
/// can evaluate burn rates without re-running the points.
std::vector<OpenLoopResult> Sweep(const Workload& workload, LoadTarget* target,
                                  const std::string& mode,
                                  const std::string& prefix,
                                  double point_seconds, size_t probe_ops,
                                  JsonReport* report) {
  OpenLoopResult probe = RunPoint(workload, target,
                                  ArrivalSchedule::Constant(kProbeRate),
                                  probe_ops, /*seed=*/7);
  double capacity = probe.achieved_qps;
  std::printf("%s capacity (saturation probe, %zu reqs): %.0f req/s\n",
              mode.c_str(), probe_ops, capacity);
  report->Add(prefix + "_capacity_qps", capacity, "1/s");

  TablePrinter tp({"Offered/cap", "Offered QPS", "Achieved QPS", "p50 (us)",
                   "p99 (us)", "p999 (us)", "Errors"});
  const double fractions[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  std::vector<OpenLoopResult> results;
  int i = 0;
  for (double fraction : fractions) {
    double rate = std::max(fraction * capacity, 1.0);
    size_t ops = std::max<size_t>(static_cast<size_t>(rate * point_seconds),
                                  200);
    OpenLoopResult r = RunPoint(workload, target,
                                ArrivalSchedule::Constant(rate), ops,
                                /*seed=*/42 + static_cast<uint64_t>(i));
    tp.AddRow({Fmt(fraction, 2), Fmt(r.offered_qps, 0),
               Fmt(r.achieved_qps, 0), Fmt(r.latency.ValueAtQuantile(0.50), 1),
               Fmt(r.latency.ValueAtQuantile(0.99), 1),
               Fmt(r.latency.ValueAtQuantile(0.999), 1),
               std::to_string(r.errors)});
    AddLoadPoint(report, prefix + "_p" + std::to_string(i), r.offered_qps,
                 r.achieved_qps, r.latency);
    results.push_back(std::move(r));
    ++i;
  }
  tp.Print();
  return results;
}

/// SLO burn-rate validation against the measured knee: derive a p99
/// latency objective from the healthy 75% point (threshold = 2x its p999,
/// so boundary noise cannot trip it), then feed each sweep point's
/// histogram through an SloTracker — the objective's error budget is 1%
/// over threshold, CountOver is the bad-event counter, exactly the math
/// the live monitor runs per second. Below the knee the burn must sit
/// under 1; past it the open-loop backlog puts nearly every request over
/// any fixed threshold and the burn explodes. This pins the tentpole's
/// core promise: burn-rate fires exactly when offered load crosses
/// capacity, not before.
void SloSection(const std::vector<OpenLoopResult>& sweep,
                JsonReport* report) {
  const OpenLoopResult& healthy = sweep[2];  // 75% of capacity
  uint64_t threshold = std::max<uint64_t>(
      static_cast<uint64_t>(2.0 * healthy.latency.ValueAtQuantile(0.999)),
      100);

  obs::SloSpec spec;
  spec.latency.push_back(obs::SloObjective{0.99, threshold});
  std::printf("\n-- slo burn-rate at the knee (objective %s) --\n",
              spec.latency[0].Name().c_str());
  const double fractions[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  std::vector<double> burns;
  for (size_t i = 0; i < sweep.size(); ++i) {
    obs::SloTracker tracker(spec, /*fast=*/1, /*slow=*/2);
    obs::SloInput in;
    in.total = sweep[i].latency.count;
    in.over_threshold = {sweep[i].latency.CountOver(threshold)};
    tracker.Feed(in);
    double burn = tracker.Status().objectives[0].fast_burn;
    std::printf("  %4.0f%% of capacity: %8llu reqs, %6llu over %llu us "
                "-> burn %.2f %s\n",
                fractions[i] * 100.0,
                static_cast<unsigned long long>(in.total),
                static_cast<unsigned long long>(in.over_threshold[0]),
                static_cast<unsigned long long>(threshold), burn,
                burn > 1.0 ? "(budget burning)" : "");
    report->Add("openloop_slo_burn_p" + std::to_string(i), burn);
    burns.push_back(burn);
  }
  report->Add("openloop_slo_threshold_us", static_cast<double>(threshold),
              "us");
  // The two points the acceptance bar names: comfortably under budget
  // below the knee, clearly burning past it.
  std::printf("  verdict: burn@75%%=%.2f (<1 %s), burn@125%%=%.2f (>1 %s)\n",
              burns[2], burns[2] < 1.0 ? "ok" : "VIOLATION",
              burns[4], burns[4] > 1.0 ? "ok" : "VIOLATION");
}

}  // namespace
}  // namespace fj::bench

int main(int argc, char** argv) {
  using namespace fj;
  using namespace fj::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv, "openloop");

  double point_seconds = EnvSeconds("FJ_OPENLOOP_SECONDS", 0.4);
  size_t probe_ops = EnvOps("FJ_OPENLOOP_PROBE_OPS", 4000);

  auto workload = StatsWorkload(EnvQueries(16));
  FactorJoinConfig config;
  FactorJoinEstimator estimator(workload->db, config);
  std::printf("trained factorjoin in %.1f ms on %s (%zu queries)\n",
              estimator.TrainSeconds() * 1e3, workload->name.c_str(),
              workload->queries.size());

  EstimatorServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.cache_capacity = 1 << 18;
  EstimatorService service(estimator, service_options);
  // Warm the single-estimate path: the sweeps measure the serving regime,
  // not first-touch model evaluation.
  for (const Query& q : workload->queries) service.Estimate(q);

  std::printf("\n-- in-process open-loop sweep (%.1fs per point) --\n",
              point_seconds);
  InProcessTarget inproc(&workload->db, &estimator, &service);
  std::vector<OpenLoopResult> sweep =
      Sweep(*workload, &inproc, "in-process", "openloop_inproc", point_seconds,
            probe_ops, &report);
  SloSection(sweep, &report);

  std::printf("\n-- loopback tcp open-loop sweep --\n");
  {
    net::EstimatorServerOptions server_options;
    server_options.endpoint.port = 0;  // ephemeral
    net::EstimatorServer server(service, server_options);
    server.Start();
    net::EstimatorClientOptions client_options;
    client_options.endpoint = server.endpoint();
    net::EstimatorClient client(client_options);
    client.Connect();
    RemoteTarget remote(&client, workload->db.TableNames());
    Sweep(*workload, &remote, "loopback tcp", "openloop_tcp", point_seconds,
          probe_ops, &report);
  }

  // Mixed read/update traffic, last: update ops mutate the tables, which
  // would skew any sweep run after them.
  std::printf("\n-- poisson arrivals, 2%% update mix (in-process) --\n");
  {
    ServiceStats before = service.Stats();
    double capacity = 1.0;
    // Re-probe cheaply: capacity may differ slightly from the sweep's by
    // now (cache contents), and the sweep's local is out of scope here.
    OpenLoopResult probe =
        RunPoint(*workload, &inproc, ArrivalSchedule::Constant(kProbeRate),
                 probe_ops / 2, /*seed=*/7);
    capacity = std::max(probe.achieved_qps, 1.0);

    // 10% of read capacity: every update op stalls the whole service for
    // a Drain + ApplyInsert/ApplyDelete (~ms), so a 2% update mix cuts
    // sustainable throughput by an order of magnitude — offering near C
    // would just saturate every quantile at the backlog size.
    LoadGenOptions options;
    options.seed = 99;
    options.schedule = ArrivalSchedule::Poisson(0.1 * capacity);
    options.num_ops = std::max<size_t>(
        static_cast<size_t>(0.1 * capacity * point_seconds), 200);
    options.update_fraction = 0.02;
    options.update_rows = 64;
    Trace trace = GenerateTrace(*workload, options);
    OpenLoopResult r = RunOpenLoop(trace, workload->queries, &inproc);
    ServiceStats after = service.Stats();
    std::printf("  %llu reads + %llu updates: offered %.0f/s, achieved "
                "%.0f/s, p50 %.1f us, p99 %.1f us, p999 %.1f us, "
                "%llu errors, %llu update notifications\n",
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.updates), r.offered_qps,
                r.achieved_qps, r.latency.ValueAtQuantile(0.50),
                r.latency.ValueAtQuantile(0.99),
                r.latency.ValueAtQuantile(0.999),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(after.updates_notified -
                                                before.updates_notified));
    AddLoadPoint(&report, "openloop_mixed", r.offered_qps, r.achieved_qps,
                 r.latency);
    report.Add("openloop_mixed_updates", static_cast<double>(r.updates));
    report.Add("openloop_mixed_errors", static_cast<double>(r.errors));
  }

  report.Write();
  return 0;
}

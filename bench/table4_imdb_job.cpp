// Reproduces Table 4: end-to-end performance on the IMDB-JOB(-like)
// workload. The learned data-driven methods and JoinHist are absent, as in
// the paper: the workload's cyclic templates, self joins and LIKE filters
// are outside their supported class. Expected shape: FactorJoin best overall
// time; PessEst comparable execution but far larger planning time; WJSample
// far behind.
#include <cstdio>

#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = ImdbWorkload();
  std::printf("== Table 4: end-to-end on %s (%zu rows, %zu queries) ==\n",
              w->name.c_str(), w->db.TotalRows(), w->queries.size());

  std::vector<MethodRow> rows;

  PostgresEstimator postgres(w->db);
  rows.push_back(RunMethod(w->db, w->queries, &postgres));

  {
    TrueCardEstimator truecard(w->db);
    MethodRow r = RunMethod(w->db, w->queries, &truecard,
                            /*charge_planning=*/false);
    r.name = "truecard(optimal)";
    rows.push_back(std::move(r));
  }
  {
    WanderJoinOptions o;
    o.walks = 400;
    WanderJoinEstimator wj(w->db, o);
    rows.push_back(RunMethod(w->db, w->queries, &wj));
  }
  {
    ImdbJobOptions shadow_opts;
    shadow_opts.scale = EnvScale();
    shadow_opts.seed = 501;
    shadow_opts.num_queries = 50;
    auto shadow = MakeImdbJob(shadow_opts);
    auto examples = MscnTrainingSet(w->db, *shadow);
    MscnEstimator mscn(w->db, examples);
    rows.push_back(RunMethod(w->db, w->queries, &mscn));
  }
  {
    PessimisticEstimator pessest(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &pessest));
  }
  {
    UBlockEstimator ublock(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &ublock));
  }
  {
    auto factorjoin = MakeFactorJoinImdb(w->db);
    rows.push_back(RunMethod(w->db, w->queries, factorjoin.get()));
  }

  PrintEndToEndTable(rows, "postgres");
  return 0;
}

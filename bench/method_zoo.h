// Construction of every CardEst method under evaluation, shared by the
// table/figure benches. Mirrors the baselines of Section 6.1.
#pragma once

#include <algorithm>

#include <memory>
#include <vector>

#include "baselines/fanout_denorm.h"
#include "baselines/joinhist_estimator.h"
#include "baselines/mscn_estimator.h"
#include "baselines/pessimistic_estimator.h"
#include "baselines/postgres_estimator.h"
#include "baselines/truecard_estimator.h"
#include "baselines/ublock_estimator.h"
#include "baselines/wander_join.h"
#include "bench_util.h"
#include "factorjoin/estimator.h"

namespace fj::bench {

/// MSCN training set: sub-plan queries of a shadow workload (same generator,
/// different seed — "similar distribution to the testing workload", 6.1)
/// labeled by executing them.
inline std::vector<TrainingExample> MscnTrainingSet(
    const Database& db, const Workload& shadow, size_t max_queries = 40,
    size_t max_examples = 1500) {
  std::vector<TrainingExample> examples;
  TrueCardOptions opts;
  opts.max_output_tuples = 2'000'000;
  for (size_t i = 0; i < shadow.queries.size() && i < max_queries; ++i) {
    for (const Query& sub : EnumerateSubplans(shadow.queries[i], 1).queries) {
      if (examples.size() >= max_examples) return examples;
      auto card = TrueCardinality(db, sub, nullptr, opts);
      if (!card.has_value()) continue;
      examples.push_back({sub, static_cast<double>(*card)});
    }
  }
  return examples;
}

/// FactorJoin with the paper's defaults for STATS-CEB: k=100, GBSA, Bayesian
/// network single-table estimator.
inline std::unique_ptr<FactorJoinEstimator> MakeFactorJoinStats(
    const Database& db) {
  FactorJoinConfig cfg;
  cfg.num_bins = 100;
  cfg.binning = BinningStrategy::kGbsa;
  cfg.estimator = TableEstimatorKind::kBayesNet;
  return std::make_unique<FactorJoinEstimator>(db, cfg);
}

/// FactorJoin for IMDB-JOB: sampling single-table estimator (1%), as the
/// workload's LIKE / disjunctive filters are outside the BN's class.
inline std::unique_ptr<FactorJoinEstimator> MakeFactorJoinImdb(
    const Database& db) {
  FactorJoinConfig cfg;
  cfg.num_bins = 100;
  cfg.binning = BinningStrategy::kGbsa;
  cfg.estimator = TableEstimatorKind::kSampling;
  // The paper samples 1% of a 50M-row IMDB; at bench scale that sample would
  // be degenerate, so the rate is chosen to give a comparable absolute
  // sample size per table.
  cfg.sampling_rate = std::clamp(50000.0 / (static_cast<double>(db.TotalRows()) + 1.0),
                                 0.01, 0.5);
  return std::make_unique<FactorJoinEstimator>(db, cfg);
}

/// The learned data-driven family analogs (BayesCard / DeepDB / FLAT):
/// the same denormalize-and-model scheme at three capacities.
inline std::unique_ptr<FanoutDenormEstimator> MakeDenormAnalog(
    const Database& db, const std::vector<Query>& workload,
    const std::string& name, size_t sample_tuples) {
  FanoutDenormOptions o;
  o.sample_tuples = sample_tuples;
  o.max_output_tuples = 5'000'000;
  return std::make_unique<FanoutDenormEstimator>(db, workload, name, o);
}

}  // namespace fj::bench

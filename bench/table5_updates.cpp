// Reproduces Table 5: incremental update performance. A stale model is
// trained on the "old half" of the data (rows created before the median
// CreationDate, mirroring the paper's before-2014 split), the rest is
// inserted, models are updated, and end-to-end performance is re-measured.
// Expected shape: FactorJoin updates orders of magnitude faster than the
// denormalizing learned analogs (which must recompute join samples) at
// better post-update end-to-end time.
#include <algorithm>
#include <cstdio>

#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

namespace {

// Splits every table of the source database on the given date column value
// (tables without the column are split by row position to keep FK frequency
// shape); returns a database holding only "old" rows, plus per-table row
// buffers to insert later.
struct SplitData {
  std::unique_ptr<Database> old_db;
  // Per table: the full column-wise data of the new rows.
  std::unordered_map<std::string, std::vector<std::vector<int64_t>>> new_rows;
  std::unordered_map<std::string, std::vector<std::string>> column_names;
};

SplitData SplitByDate(const Database& src, int64_t split_day) {
  SplitData out;
  out.old_db = std::make_unique<Database>();
  for (const auto& name : src.TableNames()) {
    const Table& t = src.GetTable(name);
    // Pick the date column if present.
    int date_col = -1;
    for (size_t c = 0; c < t.columns().size(); ++c) {
      const std::string& cn = t.columns()[c]->name();
      if (cn == "CreationDate" || cn == "Date") date_col = static_cast<int>(c);
    }
    Table* dst = out.old_db->AddTable(name);
    std::vector<std::vector<int64_t>>& pending = out.new_rows[name];
    pending.resize(t.num_columns());
    for (const auto& col : t.columns()) {
      dst->AddColumn(col->name(), col->type());
      out.column_names[name].push_back(col->name());
    }
    for (size_t r = 0; r < t.num_rows(); ++r) {
      bool is_old = date_col >= 0
                        ? (!t.columns()[static_cast<size_t>(date_col)]->IsNull(r) &&
                           t.columns()[static_cast<size_t>(date_col)]->IntAt(r) <= split_day)
                        : r < t.num_rows() / 2;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        const Column& sc = *t.columns()[c];
        if (is_old) {
          Column* dc = dst->columns()[c].get();
          if (sc.IsNull(r)) {
            dc->AppendNull();
          } else if (sc.type() == ColumnType::kString) {
            dc->AppendString(sc.StringAt(r));
          } else if (sc.type() == ColumnType::kDouble) {
            dc->AppendDouble(sc.DoubleAt(r));
          } else {
            dc->AppendInt(sc.IntAt(r));
          }
        } else {
          pending[c].push_back(sc.IntAt(r));  // codes suffice for int tables
        }
      }
    }
  }
  for (const auto& rel : src.join_relations()) {
    out.old_db->AddJoinRelation(rel.left, rel.right);
  }
  return out;
}

// Appends the pending rows of one table (int columns only — the STATS-like
// schema is all-integer).
size_t InsertPending(Database* db, const std::string& table,
                     const std::vector<std::vector<int64_t>>& pending) {
  Table* t = db->MutableTable(table);
  size_t first_new = t->num_rows();
  if (pending.empty() || pending[0].empty()) return first_new;
  for (size_t r = 0; r < pending[0].size(); ++r) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      int64_t v = pending[c][r];
      if (v == kNullInt64) {
        t->columns()[c]->AppendNull();
      } else {
        t->columns()[c]->AppendInt(v);
      }
    }
  }
  return first_new;
}

}  // namespace

int main() {
  auto w = StatsWorkload();
  std::printf("== Table 5: incremental updates on %s ==\n", w->name.c_str());

  // Median post creation date as the split point (paper: data before 2014).
  std::vector<int64_t> dates;
  for (int64_t v : w->db.GetTable("posts").Col("CreationDate").ints()) {
    if (v != kNullInt64) dates.push_back(v);
  }
  std::nth_element(dates.begin(), dates.begin() + static_cast<long>(dates.size() / 2),
                   dates.end());
  int64_t split_day = dates[dates.size() / 2];

  SplitData split = SplitByDate(w->db, split_day);
  std::printf("stale rows: %zu, inserted rows: %zu\n",
              split.old_db->TotalRows(),
              w->db.TotalRows() - split.old_db->TotalRows());

  TablePrinter tp({"Method", "Update time", "End-to-end after update",
                   "Overflows"});

  // --- FactorJoin: train stale, insert, incremental update. --------------
  {
    FactorJoinConfig cfg;
    cfg.num_bins = 100;
    FactorJoinEstimator fj(*split.old_db, cfg);
    double update_seconds = 0.0;
    for (const auto& name : split.old_db->TableNames()) {
      size_t first_new = InsertPending(split.old_db.get(), name,
                                       split.new_rows[name]);
      update_seconds += fj.ApplyInsert(name, first_new);
    }
    auto r = RunWorkloadEndToEnd(*split.old_db, w->queries, &fj,
                                 BenchE2eOptions());
    tp.AddRow({"factorjoin", TablePrinter::FormatSeconds(update_seconds),
               TablePrinter::FormatSeconds(SimulatedTotalSeconds(r)),
               std::to_string(r.overflows)});
  }

  // --- Learned data-driven analogs: must re-denormalize the new data. ----
  // (The paper's update numbers for BayesCard/DeepDB/FLAT include
  // recomputing the denormalized joins.)
  for (auto [name, sample] : {std::pair<const char*, size_t>{"bayescard*", 2000},
                              {"deepdb*", 10000},
                              {"flat*", 40000}}) {
    // Data is already fully inserted into split.old_db by the FactorJoin run.
    WallTimer update_timer;
    auto analog = MakeDenormAnalog(*split.old_db, w->queries, name, sample);
    double update_seconds = update_timer.Seconds();
    auto r = RunWorkloadEndToEnd(*split.old_db, w->queries, analog.get(),
                                 BenchE2eOptions());
    tp.AddRow({name, TablePrinter::FormatSeconds(update_seconds),
               TablePrinter::FormatSeconds(SimulatedTotalSeconds(r)),
               std::to_string(r.overflows)});
  }

  tp.Print();
  return 0;
}

// Service-layer incremental updates: extends the paper's Table 5 scenario
// (incremental statistics updates) to the serving layer. A trained
// FactorJoin model is wrapped in an EstimatorService; rounds of sub-plan
// batches interleave with row inserts folded in via ApplyInsert. Three
// cache policies are compared:
//
//   stale     — the pre-PR-2 footgun: the cache is never invalidated, so
//               updated tables keep serving pre-update estimates;
//   clear     — InvalidateAll() after every insert (global stop-the-world);
//   targeted  — NotifyUpdate(table): epoch-based lazy invalidation of only
//               the entries touching the updated table.
//
// Metrics per policy: cache hit rate across the measured rounds, the
// fraction of served sub-plan estimates that differ from a fresh estimator
// run (staleness), and entries invalidated. Expected shape: `targeted`
// matches `clear` on staleness (zero) at a hit rate close to `stale`.
//
// Environment knobs: FJ_BENCH_ROUNDS (default 6), FJ_BENCH_CLIENTS (4).
//
//   $ ./bench_service_updates
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "factorjoin/estimator.h"
#include "query/subplan.h"
#include "service/estimator_service.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace fj::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : fallback;
}

// users -< orders >- items with skewed foreign keys: large enough that
// estimates cost something, small enough to retrain per policy run.
Database MakeDb() {
  Database db;
  Table* users = db.AddTable("users");
  Column* u_id = users->AddColumn("id", ColumnType::kInt64);
  Column* u_age = users->AddColumn("age", ColumnType::kInt64);
  for (int i = 0; i < 2000; ++i) {
    u_id->AppendInt(i);
    u_age->AppendInt(18 + (i * 7) % 60);
  }
  Table* orders = db.AddTable("orders");
  Column* o_user = orders->AddColumn("user_id", ColumnType::kInt64);
  Column* o_item = orders->AddColumn("item_id", ColumnType::kInt64);
  Column* o_amount = orders->AddColumn("amount", ColumnType::kInt64);
  for (int i = 0; i < 40000; ++i) {
    int user = (i * i + 17 * i) % 2000;
    user = user % (1 + user % 200);
    o_user->AppendInt(user);
    o_item->AppendInt((i * 13) % 500);
    o_amount->AppendInt((i * 37) % 1000);
  }
  Table* items = db.AddTable("items");
  Column* i_id = items->AddColumn("id", ColumnType::kInt64);
  Column* i_price = items->AddColumn("price", ColumnType::kInt64);
  for (int i = 0; i < 500; ++i) {
    i_id->AppendInt(i);
    i_price->AppendInt((i * 11) % 90);
  }
  db.AddJoinRelation({"users", "id"}, {"orders", "user_id"});
  db.AddJoinRelation({"orders", "item_id"}, {"items", "id"});
  return db;
}

std::vector<Query> MakeWorkload(size_t count) {
  std::vector<Query> queries;
  for (size_t i = 0; i < count; ++i) {
    Query q;
    q.AddTable("users", "u").AddTable("orders", "o").AddTable("items", "i");
    q.AddJoin("u", "id", "o", "user_id");
    q.AddJoin("o", "item_id", "i", "id");
    q.SetFilter("u", Predicate::Cmp("age", CmpOp::kGt,
                                    Literal::Int(20 + static_cast<int>(i % 30))));
    q.SetFilter("o", Predicate::Cmp("amount", CmpOp::kLt,
                                    Literal::Int(200 + static_cast<int>(i * 17 % 600))));
    queries.push_back(std::move(q));
  }
  return queries;
}

// Appends one insert chunk to `table` (rotating schema-aware fill).
size_t InsertChunk(Database* db, const std::string& table, int round) {
  Table* t = db->MutableTable(table);
  size_t first = t->num_rows();
  constexpr int kChunk = 2000;
  for (int i = 0; i < kChunk; ++i) {
    if (table == "orders") {
      t->MutableCol("user_id")->AppendInt((round * 7 + i) % 50);
      t->MutableCol("item_id")->AppendInt((round * 11 + i) % 500);
      t->MutableCol("amount")->AppendInt((i * 37) % 1000);
    } else if (table == "users") {
      t->MutableCol("id")->AppendInt(static_cast<int64_t>(first + i));
      t->MutableCol("age")->AppendInt(18 + (round * 13 + i) % 60);
    } else {  // items
      t->MutableCol("id")->AppendInt(static_cast<int64_t>(first + i));
      t->MutableCol("price")->AppendInt((round * 5 + i) % 90);
    }
  }
  return first;
}

enum class Policy { kStale, kClear, kTargeted };

struct PolicyResult {
  double hit_rate = 0.0;
  double stale_fraction = 0.0;  // served values differing from fresh
  uint64_t invalidations = 0;
  double serve_seconds = 0.0;
  double update_seconds = 0.0;
};

PolicyResult RunPolicy(Policy policy, size_t rounds, size_t clients) {
  Database db = MakeDb();
  FactorJoinConfig config;
  config.num_bins = 64;
  FactorJoinEstimator estimator(db, config);
  std::vector<Query> queries = MakeWorkload(24);
  std::vector<std::vector<uint64_t>> masks;
  for (const Query& q : queries) {
    masks.push_back(EnumerateConnectedSubsets(q, 1));
  }

  EstimatorServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 1 << 18;
  EstimatorService service(estimator, options);

  // Warm the cache once so round 0 starts in the serving regime.
  for (size_t i = 0; i < queries.size(); ++i) {
    service.EstimateSubplans(queries[i], masks[i]);
  }

  const char* update_tables[] = {"orders", "items", "users"};
  PolicyResult result;
  uint64_t served_values = 0;
  uint64_t stale_values = 0;
  ServiceStats warm = service.Stats();

  for (size_t round = 0; round < rounds; ++round) {
    // Serve: `clients` threads replay the workload as sub-plan batches.
    WallTimer serve_timer;
    std::vector<std::vector<std::unordered_map<uint64_t, double>>> served(
        clients);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        served[c].resize(queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          size_t idx = (i + c * 5) % queries.size();
          served[c][idx] = service.EstimateSubplans(queries[idx], masks[idx]);
        }
      });
    }
    for (auto& t : threads) t.join();
    result.serve_seconds += serve_timer.Seconds();

    // Staleness audit: compare every served value against a fresh run of
    // the estimator (outside the timed serving section).
    for (size_t i = 0; i < queries.size(); ++i) {
      auto fresh = estimator.EstimateSubplans(queries[i], masks[i]);
      for (size_t c = 0; c < clients; ++c) {
        for (const auto& [mask, value] : served[c][i]) {
          ++served_values;
          if (value != fresh.at(mask)) ++stale_values;
        }
      }
    }

    // Update: one insert chunk, folded into the model. The clients are
    // already joined; Drain() completes the quiesce window the estimator
    // update requires.
    service.Drain();
    const std::string table = update_tables[round % 3];
    size_t first = InsertChunk(&db, table, static_cast<int>(round));
    WallTimer update_timer;
    estimator.ApplyInsert(table, first);
    switch (policy) {
      case Policy::kStale:
        break;
      case Policy::kClear:
        service.InvalidateAll();
        break;
      case Policy::kTargeted:
        service.NotifyUpdate(table);
        break;
    }
    result.update_seconds += update_timer.Seconds();
  }

  ServiceStats done = service.Stats();
  uint64_t hits = done.cache.hits - warm.cache.hits;
  uint64_t misses = done.cache.misses - warm.cache.misses;
  result.hit_rate = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
  result.stale_fraction =
      served_values == 0 ? 0.0
                         : static_cast<double>(stale_values) /
                               static_cast<double>(served_values);
  result.invalidations = done.cache.invalidations;
  return result;
}

}  // namespace
}  // namespace fj::bench

int main() {
  using namespace fj;
  using namespace fj::bench;

  size_t rounds = EnvSize("FJ_BENCH_ROUNDS", 6);
  size_t clients = EnvSize("FJ_BENCH_CLIENTS", 4);
  std::printf("== Service updates: %zu rounds of (serve, insert), %zu "
              "clients ==\n",
              rounds, clients);
  std::printf("(Table 5's incremental-update scenario extended to the "
              "serving layer)\n\n");

  TablePrinter tp({"Policy", "Hit rate", "Stale served", "Invalidations",
                   "Serve time", "Update time"});
  struct Row {
    const char* name;
    Policy policy;
  };
  for (Row row : {Row{"stale (never invalidate)", Policy::kStale},
                  Row{"clear (global)", Policy::kClear},
                  Row{"targeted (NotifyUpdate)", Policy::kTargeted}}) {
    PolicyResult r = RunPolicy(row.policy, rounds, clients);
    tp.AddRow({row.name, TablePrinter::FormatPercent(r.hit_rate),
               TablePrinter::FormatPercent(r.stale_fraction),
               std::to_string(r.invalidations),
               TablePrinter::FormatSeconds(r.serve_seconds),
               TablePrinter::FormatSeconds(r.update_seconds)});
  }
  tp.Print();
  std::printf(
      "\nExpected shape: `targeted` serves zero stale estimates (like "
      "`clear`)\nwhile retaining most of the hit rate (like `stale`): only "
      "entries touching\nthe updated table are recomputed.\n");
  return 0;
}

// Shared helpers for the benchmark harnesses (one binary per paper table /
// figure). Each binary prints the same row/series structure as the paper's
// artifact; absolute numbers differ from the paper (simulated substrate) but
// the comparative shape is the reproduction target (see EXPERIMENTS.md).
//
// Environment knobs (all optional):
//   FJ_BENCH_SCALE    data scale factor        (default 0.3)
//   FJ_BENCH_QUERIES  queries per workload     (default: paper counts)
//
// Machine-readable output: every harness that accepts `--json <path>` (or
// `--json=<path>`) additionally writes its headline numbers as a flat JSON
// metric list via JsonReport, so the perf trajectory is trackable across
// PRs (CI uploads the files as artifacts; docs/BENCHMARKS.md records the
// before/after numbers).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/true_card.h"
#include "obs/latency_histogram.h"
#include "optimizer/endtoend.h"
#include "query/subplan.h"
#include "stats/cardinality_estimator.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workload/imdb_job.h"
#include "workload/stats_ceb.h"

namespace fj::bench {

inline double EnvScale(double fallback = 0.15) {
  const char* s = std::getenv("FJ_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : fallback;
}

/// Flat JSON metric sink behind the shared `--json <path>` flag.
///
///   JsonReport report = JsonReport::FromArgs(argc, argv, "micro_latency");
///   report.Add("progressive_ms_per_pass", 2.9, "ms");
///   report.Write();  // no-op when --json was not given
///
/// Output shape (stable across benches, one object per metric):
///   {"benchmark": "micro_latency", "metrics": [
///     {"name": "progressive_ms_per_pass", "value": 2.9, "unit": "ms"}]}
class JsonReport {
 public:
  /// Scans argv for `--json <path>` / `--json=<path>`. Unrelated arguments
  /// are ignored, so harnesses with their own flags can share argv.
  static JsonReport FromArgs(int argc, char** argv, std::string benchmark) {
    JsonReport report;
    report.benchmark_ = std::move(benchmark);
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        report.path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        report.path_ = arg.substr(7);
      }
    }
    return report;
  }

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& name, double value, std::string unit = "") {
    metrics_.push_back(Metric{name, value, std::move(unit)});
  }

  /// Writes the report; exits non-zero on I/O failure so CI notices a
  /// missing artifact. No-op when --json was not given.
  void Write() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\"benchmark\": \"%s\", \"metrics\": [",
                 Escaped(benchmark_).c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n  {\"name\": \"%s\", \"value\": %.17g",
                   i == 0 ? "" : ",", Escaped(metrics_[i].name).c_str(),
                   metrics_[i].value);
      if (!metrics_[i].unit.empty()) {
        std::fprintf(f, ", \"unit\": \"%s\"", Escaped(metrics_[i].unit).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %zu metrics to %s\n", metrics_.size(), path_.c_str());
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
      out.push_back(c);
    }
    return out;
  }

  std::string benchmark_;
  std::string path_;
  std::vector<Metric> metrics_;
};

/// Shared latency-series emission: every bench that reports a latency
/// distribution under some prefix emits the same three quantile keys
/// (`<prefix>_p50_micros`, `<prefix>_p99_micros`, `<prefix>_p999_micros`),
/// so the perf-smoke artifacts stay uniform across benches. Pre-existing
/// keys (e.g. `tcp_p999_micros`) keep their exact names — the prefix is
/// whatever the bench already used.
inline void AddLatencyQuantiles(JsonReport* report, const std::string& prefix,
                                const obs::HistogramSnapshot& latency) {
  report->Add(prefix + "_p50_micros", latency.ValueAtQuantile(0.50), "us");
  report->Add(prefix + "_p99_micros", latency.ValueAtQuantile(0.99), "us");
  report->Add(prefix + "_p999_micros", latency.ValueAtQuantile(0.999), "us");
}

/// One point of an offered-load sweep (latency-under-load curve): offered
/// vs achieved rate plus the quantile triple above, all under one prefix
/// (e.g. `openloop_inproc_p2`).
inline void AddLoadPoint(JsonReport* report, const std::string& prefix,
                         double offered_qps, double achieved_qps,
                         const obs::HistogramSnapshot& latency) {
  report->Add(prefix + "_offered_qps", offered_qps, "1/s");
  report->Add(prefix + "_achieved_qps", achieved_qps, "1/s");
  AddLatencyQuantiles(report, prefix, latency);
}

inline size_t EnvQueries(size_t fallback) {
  const char* s = std::getenv("FJ_BENCH_QUERIES");
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : fallback;
}

/// Keeps `value` observable so the compiler cannot delete a benchmarked
/// computation whose result is otherwise unused.
template <typename T>
inline void DoNotOptimizeAway(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

/// Fixed-precision number formatting for table cells.
inline std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

inline std::unique_ptr<Workload> StatsWorkload(
    size_t default_queries = 146) {
  StatsCebOptions o;
  o.scale = EnvScale();
  o.num_queries = EnvQueries(default_queries);
  return MakeStatsCeb(o);
}

inline std::unique_ptr<Workload> ImdbWorkload(size_t default_queries = 113) {
  ImdbJobOptions o;
  o.scale = EnvScale();
  o.num_queries = EnvQueries(default_queries);
  return MakeImdbJob(o);
}

/// One end-to-end method row: total, exec + plan split, improvement over a
/// baseline total (Table 3 / Table 4 layout).
struct MethodRow {
  std::string name;
  WorkloadRunResult result;
};

inline EndToEndOptions BenchE2eOptions(bool charge_planning = true) {
  EndToEndOptions o;
  o.max_output_tuples = 25'000'000;
  o.charge_planning = charge_planning;
  return o;
}

inline MethodRow RunMethod(const Database& db,
                           const std::vector<Query>& queries,
                           CardinalityEstimator* estimator,
                           bool charge_planning = true) {
  MethodRow row;
  row.name = estimator->Name();
  row.result = RunWorkloadEndToEnd(db, queries, estimator,
                                   BenchE2eOptions(charge_planning));
  return row;
}

/// Execution work (rows scanned/built/probed/emitted) converted to a
/// simulated wall time at a fixed single-core hash-join rate. The work
/// counters are deterministic, so the reported comparison is reproducible
/// run to run — unlike raw wall time on a shared single core.
inline constexpr double kSimulatedRowsPerSecond = 1.5e7;

/// A plan that hit the tuple cap would have produced far more work than what
/// was executed before the bail-out; charge it a fixed multiple of the cap
/// (the analog of the paper's very-long-running queries under bad plans).
inline constexpr double kOverflowPenaltyRows = 4.0 * 25'000'000;

inline double SimulatedExecSeconds(const WorkloadRunResult& r) {
  return (static_cast<double>(r.total_work) +
          static_cast<double>(r.overflows) * kOverflowPenaltyRows) /
         kSimulatedRowsPerSecond;
}

inline double SimulatedTotalSeconds(const WorkloadRunResult& r) {
  return r.total_plan_seconds + SimulatedExecSeconds(r);
}

/// Prints the Table 3/4 layout given rows; improvement is relative to the
/// row named `baseline` and computed on plan time + simulated execution.
inline void PrintEndToEndTable(const std::vector<MethodRow>& rows,
                               const std::string& baseline) {
  double base_total = 0.0;
  for (const auto& r : rows) {
    if (r.name == baseline) base_total = SimulatedTotalSeconds(r.result);
  }
  TablePrinter tp({"Method", "End-to-end", "Exec", "Plan", "Improvement",
                   "Wall exec", "Overflows"});
  for (const auto& r : rows) {
    double total = SimulatedTotalSeconds(r.result);
    std::string improvement =
        r.name == baseline
            ? "-"
            : TablePrinter::FormatPercent((base_total - total) /
                                          std::max(base_total, 1e-9));
    tp.AddRow({r.name, TablePrinter::FormatSeconds(total),
               TablePrinter::FormatSeconds(SimulatedExecSeconds(r.result)),
               TablePrinter::FormatSeconds(r.result.total_plan_seconds),
               improvement,
               TablePrinter::FormatSeconds(r.result.total_exec_seconds),
               std::to_string(r.result.overflows)});
  }
  tp.Print();
}

/// est/true relative errors over the sub-plans of the first `max_queries`
/// queries (Figure 7 / Figure 9B data). True cardinalities executed once and
/// cached across methods via `truth_cache`.
struct ErrorStats {
  std::vector<double> rel_errors;  // est / true, both clamped >= 1
  size_t underestimates = 0;
  size_t total = 0;
};

using TruthCache = std::unordered_map<std::string, double>;

inline ErrorStats CollectRelativeErrors(const Database& db,
                                        const std::vector<Query>& queries,
                                        CardinalityEstimator* estimator,
                                        TruthCache* truth_cache,
                                        size_t max_queries = 40) {
  ErrorStats stats;
  size_t n = std::min(max_queries, queries.size());
  for (size_t i = 0; i < n; ++i) {
    const Query& q = queries[i];
    auto masks = EnumerateConnectedSubsets(q, 2);
    auto ests = estimator->EstimateSubplans(q, masks);
    for (uint64_t mask : masks) {
      Query sub = q.InducedSubquery(mask);
      std::string key = sub.ToString();
      auto it = truth_cache->find(key);
      if (it == truth_cache->end()) {
        TrueCardOptions opts;
        opts.max_output_tuples = 25'000'000;
        auto card = TrueCardinality(db, sub, nullptr, opts);
        double value = card.has_value() ? static_cast<double>(*card) : -1.0;
        it = truth_cache->emplace(std::move(key), value).first;
      }
      if (it->second < 0.0) continue;  // overflowed: no ground truth
      double truth = std::max(it->second, 1.0);
      double est = std::max(ests.at(mask), 1.0);
      stats.rel_errors.push_back(est / truth);
      if (est < it->second) ++stats.underestimates;
      ++stats.total;
    }
  }
  return stats;
}

/// Average per-query estimation latency (all sub-plans), the paper's
/// "planning/estimation latency" metric.
inline double EstimationLatencyPerQuery(const std::vector<Query>& queries,
                                        CardinalityEstimator* estimator,
                                        size_t max_queries = 30) {
  WallTimer timer;
  size_t n = std::min(max_queries, queries.size());
  for (size_t i = 0; i < n; ++i) {
    auto masks = EnumerateConnectedSubsets(queries[i], 1);
    estimator->EstimateSubplans(queries[i], masks);
  }
  return n == 0 ? 0.0 : timer.Seconds() / static_cast<double>(n);
}

}  // namespace fj::bench

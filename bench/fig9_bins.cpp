// Reproduces Figure 9: ablation over the number of bins
// k in {1, 10, 50, 100, 200}: (A) end-to-end time, (B) bound tightness,
// (C) estimation latency per query, (D) training time, (E) model size.
// Expected shape: more bins tighten bounds and improve plans with
// diminishing returns (flat from ~100 on); model size grows superlinearly,
// latency roughly linearly.
#include <cstdio>

#include "factorjoin/estimator.h"
#include "method_zoo.h"
#include "util/math_stats.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Figure 9: number of bins ablation on %s ==\n",
              w->name.c_str());

  double postgres_total = 0.0;
  {
    PostgresEstimator postgres(w->db);
    postgres_total = SimulatedTotalSeconds(
        RunWorkloadEndToEnd(w->db, w->queries, &postgres, BenchE2eOptions()));
  }

  TruthCache truth_cache;
  TablePrinter tp({"k", "End-to-end", "Improv.", "p50 err", "p95 err",
                   "p99 err", "Latency/query", "Train", "Model size"});
  for (uint32_t k : {1u, 10u, 50u, 100u, 200u}) {
    FactorJoinConfig cfg;
    cfg.num_bins = k;
    cfg.binning = BinningStrategy::kGbsa;
    cfg.estimator = TableEstimatorKind::kBayesNet;
    FactorJoinEstimator fj(w->db, cfg);
    auto run = RunWorkloadEndToEnd(w->db, w->queries, &fj, BenchE2eOptions());
    auto errors = CollectRelativeErrors(w->db, w->queries, &fj, &truth_cache);
    double latency = EstimationLatencyPerQuery(w->queries, &fj);
    auto fmt = [&](double p) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", Percentile(errors.rel_errors, p));
      return std::string(buf);
    };
    tp.AddRow({std::to_string(k),
               TablePrinter::FormatSeconds(SimulatedTotalSeconds(run)),
               TablePrinter::FormatPercent(
                   (postgres_total - SimulatedTotalSeconds(run)) /
                   std::max(postgres_total, 1e-9)),
               fmt(0.5), fmt(0.95), fmt(0.99),
               TablePrinter::FormatSeconds(latency),
               TablePrinter::FormatSeconds(fj.TrainSeconds()),
               TablePrinter::FormatBytes(fj.ModelSizeBytes())});
  }
  tp.Print();
  return 0;
}

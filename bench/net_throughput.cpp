// Remote estimation overhead: in-process EstimatorService throughput vs the
// same service behind EstimatorServer/EstimatorClient over a loopback TCP
// socket and a Unix-domain socket.
//
// Each request is one batched EstimateSubplans over every connected
// sub-plan of a STATS-CEB query, against a warm cache — the serving hot
// path, where protocol + socket overhead is the largest *relative* cost.
// All three modes use the same pipelined driver (a window of async
// requests in flight, harvested in submission order), so the comparison
// isolates the wire, not the submission style. The remote path must
// sustain >= 50% of in-process throughput (acceptance criterion; numbers
// recorded in docs/BENCHMARKS.md).
//
// Environment knobs: FJ_BENCH_SCALE, FJ_BENCH_QUERIES (bench_util.h),
// FJ_BENCH_REQUESTS (default 2000), FJ_NET_WINDOW (outstanding requests,
// default 32). `--json out.json` writes the headline metrics.
//
//   $ ./bench_net_throughput [--json net.json]
#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "factorjoin/estimator.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/latency_histogram.h"
#include "obs/request_trace.h"
#include "service/estimator_service.h"

namespace fj::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr ? static_cast<size_t>(std::atoll(s)) : fallback;
}

struct RunResult {
  double qps = 0.0;
  double subplans_per_sec = 0.0;
  /// Service-side per-request latency over exactly this run's interval.
  obs::HistogramSnapshot latency;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double p999_micros = 0.0;
};

using SubmitFn = std::function<std::future<std::unordered_map<uint64_t, double>>(
    const Query&, const std::vector<uint64_t>&)>;

/// Drives `requests` pipelined batches with `window` outstanding. Latency
/// quantiles come from the service's own histograms, not bench-local
/// timing: the run brackets the shared service's stats and reads the
/// interval histogram (obs::HistogramSnapshot::DeltaSince), so every mode
/// reports the same exact-bucket quantile math the production stats RPC
/// serves. Service-side latency is submit -> fulfilled; the remote modes'
/// wire time shows up in Req/s, not in these quantiles.
RunResult RunPipelined(EstimatorService& service,
                       const std::vector<Query>& queries,
                       const std::vector<std::vector<uint64_t>>& masks,
                       size_t requests, size_t window,
                       const SubmitFn& submit) {
  std::deque<std::future<std::unordered_map<uint64_t, double>>> in_flight;
  size_t total_subplans = 0;

  ServiceStats before = service.Stats();
  WallTimer timer;
  for (size_t r = 0; r < requests; ++r) {
    size_t i = r % queries.size();
    total_subplans += masks[i].size();
    in_flight.push_back(submit(queries[i], masks[i]));
    if (in_flight.size() >= window) {
      in_flight.front().get();
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    in_flight.front().get();
    in_flight.pop_front();
  }
  double seconds = timer.Seconds();
  ServiceStats after = service.Stats();

  RunResult result;
  result.qps = static_cast<double>(requests) / seconds;
  result.subplans_per_sec = static_cast<double>(total_subplans) / seconds;
  result.latency = after.latency.DeltaSince(before.latency);
  result.p50_micros = result.latency.ValueAtQuantile(0.50);
  result.p99_micros = result.latency.ValueAtQuantile(0.99);
  result.p999_micros = result.latency.ValueAtQuantile(0.999);
  return result;
}


}  // namespace
}  // namespace fj::bench

int main(int argc, char** argv) {
  using namespace fj;
  using namespace fj::bench;
  JsonReport report = JsonReport::FromArgs(argc, argv, "net_throughput");

  auto workload = StatsWorkload(EnvQueries(16));
  FactorJoinConfig config;
  FactorJoinEstimator estimator(workload->db, config);
  std::printf("trained factorjoin in %.1f ms on %s (%zu queries)\n",
              estimator.TrainSeconds() * 1e3, workload->name.c_str(),
              workload->queries.size());

  std::vector<std::vector<uint64_t>> masks;
  size_t total = 0;
  for (const Query& q : workload->queries) {
    masks.push_back(EnumerateConnectedSubsets(q, 1));
    total += masks.back().size();
  }
  size_t requests = EnvSize("FJ_BENCH_REQUESTS", 2000);
  size_t window = EnvSize("FJ_NET_WINDOW", 32);
  std::printf("%zu sub-plans/workload pass, %zu requests, window %zu\n\n",
              total, requests, window);

  EstimatorServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.cache_capacity = 1 << 18;
  EstimatorService service(estimator, service_options);
  // Warm: the measured regime is the cached hot path in all three modes.
  for (size_t i = 0; i < workload->queries.size(); ++i) {
    service.EstimateSubplans(workload->queries[i], masks[i]);
  }

  TablePrinter tp({"Mode", "Req/s", "Sub-plans/s", "p50 (us)", "p99 (us)",
                   "p999 (us)", "vs in-process"});
  double inproc_qps = 0.0;

  {
    RunResult r = RunPipelined(
        service, workload->queries, masks, requests, window,
        [&](const Query& q, const std::vector<uint64_t>& m) {
          return service.EstimateSubplansAsync(q, m);
        });
    inproc_qps = r.qps;
    tp.AddRow({"in-process", Fmt(r.qps, 0), Fmt(r.subplans_per_sec, 0),
               Fmt(r.p50_micros, 1), Fmt(r.p99_micros, 1),
               Fmt(r.p999_micros, 1), "-"});
    report.Add("inprocess_qps", r.qps, "1/s");
    AddLatencyQuantiles(&report, "inprocess", r.latency);
  }

  double tcp_ratio = 0.0;
  double unix_ratio = 0.0;
  // Per-stage interval histograms for the tcp mode, printed after the main
  // table: service stages arrive via the protocol-v3 histogram-bearing
  // stats RPC; net stages (decode/encode/socket_write) are merged in from
  // the bench-owned server object.
  std::array<obs::HistogramSnapshot, obs::kNumStages> tcp_stages;
  uint64_t tcp_bytes_received = 0;
  uint64_t tcp_bytes_sent = 0;
  {
    net::EstimatorServerOptions server_options;
    server_options.endpoint.port = 0;  // ephemeral
    net::EstimatorServer server(service, server_options);
    server.Start();
    net::EstimatorClientOptions client_options;
    client_options.endpoint = server.endpoint();
    net::EstimatorClient client(client_options);
    client.Connect();
    ServiceStats rpc_before = client.Stats();
    RunResult r = RunPipelined(
        service, workload->queries, masks, requests, window,
        [&](const Query& q, const std::vector<uint64_t>& m) {
          return client.EstimateSubplansAsync(q, m);
        });
    ServiceStats rpc_after = client.Stats();
    tcp_ratio = r.qps / inproc_qps;
    tp.AddRow({"loopback tcp", Fmt(r.qps, 0), Fmt(r.subplans_per_sec, 0),
               Fmt(r.p50_micros, 1), Fmt(r.p99_micros, 1),
               Fmt(r.p999_micros, 1), TablePrinter::FormatPercent(tcp_ratio)});
    report.Add("tcp_qps", r.qps, "1/s");
    report.Add("tcp_vs_inprocess", tcp_ratio);
    AddLatencyQuantiles(&report, "tcp", r.latency);

    net::ServerStats net_stats = server.Stats();
    for (size_t i = 0; i < obs::kNumStages; ++i) {
      tcp_stages[i] = rpc_after.stages[i].DeltaSince(rpc_before.stages[i]);
      tcp_stages[i].Merge(net_stats.stages[i]);
    }
    tcp_bytes_received = net_stats.bytes_received;
    tcp_bytes_sent = net_stats.bytes_sent;
  }
  {
    net::EstimatorServerOptions server_options;
    server_options.endpoint.unix_path = "/tmp/fj_bench_net.sock";
    net::EstimatorServer server(service, server_options);
    server.Start();
    net::EstimatorClientOptions client_options;
    client_options.endpoint = server.endpoint();
    net::EstimatorClient client(client_options);
    client.Connect();
    RunResult r = RunPipelined(
        service, workload->queries, masks, requests, window,
        [&](const Query& q, const std::vector<uint64_t>& m) {
          return client.EstimateSubplansAsync(q, m);
        });
    unix_ratio = r.qps / inproc_qps;
    tp.AddRow({"unix socket", Fmt(r.qps, 0), Fmt(r.subplans_per_sec, 0),
               Fmt(r.p50_micros, 1), Fmt(r.p99_micros, 1),
               Fmt(r.p999_micros, 1), TablePrinter::FormatPercent(unix_ratio)});
    report.Add("unix_qps", r.qps, "1/s");
    report.Add("unix_vs_inprocess", unix_ratio);
    AddLatencyQuantiles(&report, "unix", r.latency);
  }
  tp.Print();

  std::printf("\nloopback tcp per-stage breakdown (service stages via the "
              "stats RPC, net stages from the server):\n");
  TablePrinter stage_tp({"Stage", "Count", "Mean (us)", "p99 (us)"});
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::HistogramSnapshot& d = tcp_stages[i];
    if (d.count == 0) continue;
    const char* name = obs::StageName(static_cast<obs::Stage>(i));
    stage_tp.AddRow({name, Fmt(static_cast<double>(d.count), 0),
                     Fmt(d.Mean(), 1), Fmt(d.ValueAtQuantile(0.99), 1)});
    report.Add(std::string("tcp_stage_") + name + "_mean_micros", d.Mean(),
               "us");
  }
  stage_tp.Print();
  std::printf("server wire traffic: %.1f MB in, %.1f MB out\n",
              static_cast<double>(tcp_bytes_received) / 1e6,
              static_cast<double>(tcp_bytes_sent) / 1e6);

  double best = std::max(tcp_ratio, unix_ratio);
  std::printf("\nbest remote mode sustains %.0f%% of in-process throughput "
              "(acceptance: >= 50%%): %s\n",
              best * 100.0, best >= 0.5 ? "PASS" : "FAIL");
  report.Add("best_remote_vs_inprocess", best);
  report.Write();
  return best >= 0.5 ? 0 : 1;
}

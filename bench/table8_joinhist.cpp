// Reproduces Table 8: how much each FactorJoin technique improves the
// classical join-histogram method. Rows: JoinHist, JoinHist+bound (join
// uniformity removed), JoinHist+conditional (attribute independence
// removed), FactorJoin (= both). Expected shape: each removal helps; both
// together best.
#include <cstdio>

#include "factorjoin/estimator.h"
#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Table 8: improvement over joining histograms on %s ==\n",
              w->name.c_str());

  std::vector<MethodRow> rows;
  {
    PostgresEstimator postgres(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &postgres));
  }
  {
    JoinHistOptions o;
    o.num_bins = 100;
    JoinHistEstimator jh(w->db, o);
    rows.push_back(RunMethod(w->db, w->queries, &jh));
  }
  {
    JoinHistOptions o;
    o.num_bins = 100;
    o.use_mfv_bound = true;
    JoinHistEstimator jh(w->db, o);
    MethodRow r = RunMethod(w->db, w->queries, &jh);
    r.name = "with Bound";
    rows.push_back(std::move(r));
  }
  {
    JoinHistOptions o;
    o.num_bins = 100;
    o.use_conditional = true;
    JoinHistEstimator jh(w->db, o);
    MethodRow r = RunMethod(w->db, w->queries, &jh);
    r.name = "with Conditional";
    rows.push_back(std::move(r));
  }
  {
    auto fj = MakeFactorJoinStats(w->db);
    MethodRow r = RunMethod(w->db, w->queries, fj.get());
    r.name = "with Both (FactorJoin)";
    rows.push_back(std::move(r));
  }
  PrintEndToEndTable(rows, "postgres");
  return 0;
}

// Reproduces Table 7: FactorJoin with different single-table estimators
// (BayesCard-style Bayesian network / sampling / TrueScan), k=100, GBSA.
// Expected shape: BN best end-to-end; sampling close but less accurate;
// TrueScan best execution (exact bound) but planning latency dominates.
#include <algorithm>
#include <cstdio>

#include "factorjoin/estimator.h"
#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Table 7: single-table estimators on %s ==\n",
              w->name.c_str());

  std::vector<MethodRow> rows;
  {
    PostgresEstimator postgres(w->db);
    rows.push_back(RunMethod(w->db, w->queries, &postgres));
  }
  struct Variant {
    const char* label;
    TableEstimatorKind kind;
    double rate;
  };
  // Sampling rate scaled so the absolute per-table sample size is comparable
  // to the paper's 5% of full-size STATS (see MakeFactorJoinImdb note).
  double sampling_rate = std::clamp(
      50000.0 / (static_cast<double>(w->db.TotalRows()) + 1.0), 0.05, 0.5);
  for (const Variant& v :
       {Variant{"fj-bayescard", TableEstimatorKind::kBayesNet, 0.0},
        Variant{"fj-sampling", TableEstimatorKind::kSampling, sampling_rate},
        Variant{"fj-truescan", TableEstimatorKind::kTrueScan, 0.0}}) {
    FactorJoinConfig cfg;
    cfg.num_bins = 100;
    cfg.estimator = v.kind;
    cfg.sampling_rate = v.rate;
    FactorJoinEstimator fj(w->db, cfg);
    MethodRow row = RunMethod(w->db, w->queries, &fj);
    row.name = v.label;
    rows.push_back(std::move(row));
  }
  PrintEndToEndTable(rows, "postgres");
  return 0;
}

// Reproduces Figure 6: overall comparison of model size, training time and
// estimation latency per method on both workloads. (End-to-end bar heights
// are Table 3/4; this bench produces the size/training/latency panels.)
// Expected shape: FactorJoin ~100x smaller and ~100x faster to train than
// the denormalizing learned analogs, with estimation latency close to
// Postgres.
#include <cstdio>

#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

namespace {

void Panel(const Workload& w, bool learned_data_driven_supported) {
  std::printf("-- %s --\n", w.name.c_str());
  TablePrinter tp({"Method", "Model size", "Training time",
                   "Est. latency/query"});
  auto add = [&](CardinalityEstimator* est) {
    tp.AddRow({est->Name(), TablePrinter::FormatBytes(est->ModelSizeBytes()),
               TablePrinter::FormatSeconds(est->TrainSeconds()),
               TablePrinter::FormatSeconds(
                   EstimationLatencyPerQuery(w.queries, est))});
  };
  PostgresEstimator postgres(w.db);
  add(&postgres);
  {
    JoinHistOptions o;
    o.num_bins = 100;
    JoinHistEstimator jh(w.db, o);
    if (learned_data_driven_supported) add(&jh);
  }
  {
    WanderJoinOptions o;
    o.walks = 400;
    WanderJoinEstimator wj(w.db, o);
    add(&wj);
  }
  if (learned_data_driven_supported) {
    auto bayescard = MakeDenormAnalog(w.db, w.queries, "bayescard*", 2000);
    add(bayescard.get());
    auto deepdb = MakeDenormAnalog(w.db, w.queries, "deepdb*", 10000);
    add(deepdb.get());
    auto flat = MakeDenormAnalog(w.db, w.queries, "flat*", 40000);
    add(flat.get());
  }
  {
    PessimisticEstimator pessest(w.db);
    add(&pessest);
  }
  {
    UBlockEstimator ublock(w.db);
    add(&ublock);
  }
  {
    std::unique_ptr<FactorJoinEstimator> fj =
        learned_data_driven_supported ? MakeFactorJoinStats(w.db)
                                      : MakeFactorJoinImdb(w.db);
    add(fj.get());
  }
  tp.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Figure 6: model size / training time / latency ==\n");
  Panel(*StatsWorkload(), /*learned_data_driven_supported=*/true);
  Panel(*ImdbWorkload(), /*learned_data_driven_supported=*/false);
  return 0;
}

// Reproduces Table 2: summary statistics of the two benchmark workloads
// (tables, rows, join keys, equivalent key groups, query/template counts,
// template types, sub-plan counts, true cardinality range).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace fj;
using namespace fj::bench;

namespace {

void Summarize(const Workload& w) {
  size_t min_rows = SIZE_MAX, max_rows = 0, min_cols = SIZE_MAX, max_cols = 0;
  for (const auto& name : w.db.TableNames()) {
    const Table& t = w.db.GetTable(name);
    min_rows = std::min(min_rows, t.num_rows());
    max_rows = std::max(max_rows, t.num_rows());
    min_cols = std::min(min_cols, t.num_columns());
    max_cols = std::max(max_cols, t.num_columns());
  }
  bool cyclic = false, self = false, like = false;
  size_t min_sub = SIZE_MAX, max_sub = 0, min_filters = SIZE_MAX,
         max_filters = 0;
  for (const Query& q : w.queries) {
    cyclic |= q.IsCyclic();
    self |= q.HasSelfJoin();
    size_t filters = 0;
    for (const auto& ref : q.tables()) {
      PredicatePtr f = q.FilterFor(ref.alias);
      if (f->kind() != Predicate::Kind::kTrue) {
        filters += f->ReferencedColumns().size();
        like |= f->HasStringPattern();
      }
    }
    min_filters = std::min(min_filters, filters);
    max_filters = std::max(max_filters, filters);
    size_t subs = EnumerateConnectedSubsets(q, 2).size();
    min_sub = std::min(min_sub, subs);
    max_sub = std::max(max_sub, subs);
  }
  uint64_t card_lo = UINT64_MAX, card_hi = 0;
  size_t probe = std::min<size_t>(w.queries.size(), 25);
  for (size_t i = 0; i < probe; ++i) {
    TrueCardOptions opts;
    opts.max_output_tuples = 20'000'000;
    auto c = TrueCardinality(w.db, w.queries[i], nullptr, opts);
    if (!c.has_value()) continue;
    card_lo = std::min(card_lo, *c);
    card_hi = std::max(card_hi, *c);
  }

  TablePrinter tp({"Statistic", w.name});
  tp.AddRow({"# of tables", std::to_string(w.db.TableNames().size())});
  tp.AddRow({"# of rows per table",
             std::to_string(min_rows) + " - " + std::to_string(max_rows)});
  tp.AddRow({"# of columns per table",
             std::to_string(min_cols) + " - " + std::to_string(max_cols)});
  tp.AddRow({"# of join keys", std::to_string(w.db.JoinKeyColumns().size())});
  tp.AddRow({"# of equivalent key groups",
             std::to_string(w.db.EquivalentKeyGroups().size())});
  tp.AddRow({"# of queries", std::to_string(w.queries.size())});
  std::string type = "star & chain";
  if (cyclic) type += " +cyclic";
  if (self) type += " +self";
  tp.AddRow({"join template type", type});
  tp.AddRow({"# of filter predicates", std::to_string(min_filters) + " - " +
                                           std::to_string(max_filters)});
  tp.AddRow({"filter attributes",
             like ? "numerical & categorical +string LIKE"
                  : "numerical & categorical"});
  tp.AddRow({"# of sub-plan queries",
             std::to_string(min_sub) + " - " + std::to_string(max_sub)});
  tp.AddRow({"true cardinality range (sampled)",
             TablePrinter::FormatCount(static_cast<double>(card_lo)) + " - " +
                 TablePrinter::FormatCount(static_cast<double>(card_hi))});
  tp.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Table 2: benchmark summary ==\n");
  Summarize(*StatsWorkload());
  Summarize(*ImdbWorkload());
  return 0;
}

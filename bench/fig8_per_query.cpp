// Reproduces Figure 8 (and appendix Figure 10): per-query end-to-end
// improvement over Postgres, with queries clustered by their Postgres
// runtime. Expected shape: on short-running (OLTP-like) queries Postgres
// wins (planning latency dominates); on long-running queries the accurate
// methods' better plans pay off, with FactorJoin competitive everywhere.
#include <algorithm>
#include <cstdio>

#include "method_zoo.h"

using namespace fj;
using namespace fj::bench;

int main() {
  auto w = StatsWorkload();
  std::printf("== Figure 8: per-query improvement over postgres (%s) ==\n",
              w->name.c_str());

  PostgresEstimator postgres(w->db);
  auto base = RunWorkloadEndToEnd(w->db, w->queries, &postgres,
                                  BenchE2eOptions());

  struct MethodData {
    std::string name;
    WorkloadRunResult run;
  };
  std::vector<MethodData> methods;
  {
    TrueCardEstimator truecard(w->db);
    methods.push_back({"truecard",
                       RunWorkloadEndToEnd(w->db, w->queries, &truecard,
                                           BenchE2eOptions(false))});
  }
  {
    auto flat = MakeDenormAnalog(w->db, w->queries, "flat*", 40000);
    methods.push_back({"flat*", RunWorkloadEndToEnd(w->db, w->queries,
                                                    flat.get(),
                                                    BenchE2eOptions())});
  }
  {
    PessimisticEstimator pessest(w->db);
    methods.push_back({"pessest",
                       RunWorkloadEndToEnd(w->db, w->queries, &pessest,
                                           BenchE2eOptions())});
  }
  {
    auto fj = MakeFactorJoinStats(w->db);
    methods.push_back({"factorjoin",
                       RunWorkloadEndToEnd(w->db, w->queries, fj.get(),
                                           BenchE2eOptions())});
  }

  // Cluster queries by Postgres end-to-end time into runtime intervals.
  auto query_seconds = [](const QueryRunResult& q) {
    double rows = static_cast<double>(q.exec_stats.TotalWork()) +
                  (q.overflow ? kOverflowPenaltyRows : 0.0);
    return q.plan_seconds + rows / kSimulatedRowsPerSecond;
  };
  std::vector<std::pair<double, size_t>> by_runtime;
  for (size_t i = 0; i < base.per_query.size(); ++i) {
    by_runtime.emplace_back(query_seconds(base.per_query[i]), i);
  }
  std::sort(by_runtime.begin(), by_runtime.end());
  const size_t kClusters = 6;
  size_t per_cluster = (by_runtime.size() + kClusters - 1) / kClusters;

  TablePrinter tp([&] {
    std::vector<std::string> header{"Runtime interval", "queries",
                                    "postgres"};
    for (const auto& m : methods) header.push_back(m.name);
    return header;
  }());

  for (size_t c = 0; c < kClusters; ++c) {
    size_t begin = c * per_cluster;
    size_t end = std::min(begin + per_cluster, by_runtime.size());
    if (begin >= end) break;
    double base_total = 0.0;
    for (size_t i = begin; i < end; ++i) base_total += by_runtime[i].first;
    std::vector<std::string> row;
    char interval[64];
    std::snprintf(interval, sizeof(interval), "%s - %s",
                  TablePrinter::FormatSeconds(by_runtime[begin].first).c_str(),
                  TablePrinter::FormatSeconds(by_runtime[end - 1].first).c_str());
    row.push_back(interval);
    row.push_back(std::to_string(end - begin));
    row.push_back(TablePrinter::FormatSeconds(base_total));
    for (const auto& m : methods) {
      double total = 0.0;
      for (size_t i = begin; i < end; ++i) {
        total += query_seconds(m.run.per_query[by_runtime[i].second]);
      }
      row.push_back(TablePrinter::FormatPercent(
          (base_total - total) / std::max(base_total, 1e-9)));
    }
    tp.AddRow(std::move(row));
  }
  tp.Print();
  std::printf("(positive %% = faster than postgres on that cluster)\n");
  return 0;
}

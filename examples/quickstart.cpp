// Quickstart: build a tiny database, train FactorJoin, estimate a join query
// and compare against the exact cardinality.
//
//   $ ./quickstart
#include <cstdio>

#include "exec/true_card.h"
#include "factorjoin/estimator.h"

using namespace fj;

int main() {
  // 1. A two-table database: users and their orders (skewed foreign key).
  Database db;
  Table* users = db.AddTable("users");
  Column* u_id = users->AddColumn("id", ColumnType::kInt64);
  Column* u_age = users->AddColumn("age", ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    u_id->AppendInt(i);
    u_age->AppendInt(18 + (i * 7) % 60);
  }
  Table* orders = db.AddTable("orders");
  Column* o_user = orders->AddColumn("user_id", ColumnType::kInt64);
  Column* o_amount = orders->AddColumn("amount", ColumnType::kInt64);
  for (int i = 0; i < 20000; ++i) {
    // Heavy users: user k receives ~1/(k+1) of the orders.
    int user = (i * i + 17 * i) % 1000;
    user = user % (1 + user % 100);  // crude skew
    o_user->AppendInt(user);
    o_amount->AppendInt((i * 37) % 500);
  }

  // 2. Declare the join relation — this defines the equivalent key group
  //    whose domain FactorJoin bins.
  db.AddJoinRelation({"users", "id"}, {"orders", "user_id"});

  // 3. Offline phase: bin the key domain (GBSA), scan per-bin MFV summaries,
  //    train one Bayesian network per table.
  FactorJoinConfig config;
  config.num_bins = 64;
  config.binning = BinningStrategy::kGbsa;
  config.estimator = TableEstimatorKind::kBayesNet;
  FactorJoinEstimator estimator(db, config);
  std::printf("trained in %.1f ms, model size %.1f KB\n",
              estimator.TrainSeconds() * 1e3,
              static_cast<double>(estimator.ModelSizeBytes()) / 1024.0);

  // 4. Online phase: estimate a filtered join.
  Query q;
  q.AddTable("users").AddTable("orders");
  q.AddJoin("users", "id", "orders", "user_id");
  q.SetFilter("users", Predicate::Between("age", Literal::Int(20),
                                          Literal::Int(40)));
  q.SetFilter("orders",
              Predicate::Cmp("amount", CmpOp::kLt, Literal::Int(250)));

  double estimate = estimator.Estimate(q);
  auto truth = TrueCardinality(db, q);
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("estimated (probabilistic upper bound): %.0f\n", estimate);
  std::printf("true cardinality:                      %llu\n",
              static_cast<unsigned long long>(truth.value_or(0)));
  return 0;
}

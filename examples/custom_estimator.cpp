// Plugging a custom single-table estimator class into the evaluation
// harness: the CardinalityEstimator interface is all the optimizer needs, so
// any estimation scheme can be compared end-to-end against FactorJoin.
//
// This example implements a deliberately naive "row-count" estimator (every
// join multiplies by a fudge factor) and shows how badly its plans compare.
//
//   $ ./custom_estimator
#include <cmath>
#include <cstdio>

#include "factorjoin/estimator.h"
#include "optimizer/endtoend.h"
#include "workload/imdb_job.h"

using namespace fj;

namespace {

/// Example custom method: |Q| ~= (product of table sizes)^0.5 — no data
/// statistics at all.
class SquareRootEstimator : public CardinalityEstimator {
 public:
  explicit SquareRootEstimator(const Database& db) : db_(&db) {}

  std::string Name() const override { return "sqrt-guess"; }

  double Estimate(const Query& query) const override {
    double product = 1.0;
    for (const auto& ref : query.tables()) {
      product *= static_cast<double>(db_->GetTable(ref.table).num_rows());
    }
    return std::sqrt(product);
  }

 private:
  const Database* db_;
};

}  // namespace

int main() {
  ImdbJobOptions options;
  options.scale = 0.05;
  options.num_queries = 10;
  auto workload = MakeImdbJob(options);

  SquareRootEstimator naive(workload->db);

  FactorJoinConfig config;
  config.num_bins = 100;
  config.estimator = TableEstimatorKind::kSampling;
  config.sampling_rate = 0.2;
  FactorJoinEstimator factorjoin(workload->db, config);

  std::printf("%-12s %-14s %-14s\n", "method", "total work", "plan time");
  for (CardinalityEstimator* est :
       {static_cast<CardinalityEstimator*>(&naive),
        static_cast<CardinalityEstimator*>(&factorjoin)}) {
    auto r = RunWorkloadEndToEnd(workload->db, workload->queries, est);
    std::printf("%-12s %-14zu %.2fms\n", est->Name().c_str(), r.total_work,
                r.total_plan_seconds * 1e3);
  }
  return 0;
}

// Optimizer integration: inject FactorJoin's sub-plan estimates into the
// cost-based join-order optimizer and execute the chosen plan — the same
// loop the paper runs inside PostgreSQL (Section 6.1).
//
//   $ ./optimizer_integration
#include <cstdio>

#include "baselines/postgres_estimator.h"
#include "factorjoin/estimator.h"
#include "optimizer/endtoend.h"
#include "workload/stats_ceb.h"

using namespace fj;

int main() {
  // A small STATS-CEB-like benchmark instance.
  StatsCebOptions options;
  options.scale = 0.05;
  options.num_queries = 12;
  auto workload = MakeStatsCeb(options);
  std::printf("database: %zu tables, %zu rows; %zu queries\n\n",
              workload->db.TableNames().size(), workload->db.TotalRows(),
              workload->queries.size());

  FactorJoinConfig config;
  config.num_bins = 100;
  FactorJoinEstimator factorjoin(workload->db, config);
  PostgresEstimator postgres(workload->db);

  for (size_t i = 0; i < 3 && i < workload->queries.size(); ++i) {
    const Query& q = workload->queries[i];
    std::printf("query %zu: %s\n", i, q.ToString().c_str());
    for (CardinalityEstimator* est :
         {static_cast<CardinalityEstimator*>(&factorjoin),
          static_cast<CardinalityEstimator*>(&postgres)}) {
      QueryRunResult r = RunQueryEndToEnd(workload->db, q, est);
      std::printf(
          "  %-11s plan=%s  est=%.0f  true=%llu  work=%zu rows  "
          "planning=%.2fms\n",
          est->Name().c_str(), r.plan_text.c_str(), r.estimated_card,
          static_cast<unsigned long long>(r.true_card),
          r.exec_stats.TotalWork(), r.plan_seconds * 1e3);
    }
    std::printf("\n");
  }
  return 0;
}

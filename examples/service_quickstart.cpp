// Serving-layer quickstart: train FactorJoin once, wrap it in an
// EstimatorService, and serve estimate requests from a worker pool with a
// sharded sub-plan cache.
//
//   $ ./service_quickstart
#include <cstdio>
#include <future>
#include <vector>

#include "factorjoin/estimator.h"
#include "query/subplan.h"
#include "service/estimator_service.h"

using namespace fj;

int main() {
  // 1. The quickstart database: users and their orders (skewed foreign key).
  Database db;
  Table* users = db.AddTable("users");
  Column* u_id = users->AddColumn("id", ColumnType::kInt64);
  Column* u_age = users->AddColumn("age", ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    u_id->AppendInt(i);
    u_age->AppendInt(18 + (i * 7) % 60);
  }
  Table* orders = db.AddTable("orders");
  Column* o_user = orders->AddColumn("user_id", ColumnType::kInt64);
  Column* o_amount = orders->AddColumn("amount", ColumnType::kInt64);
  for (int i = 0; i < 20000; ++i) {
    int user = (i * i + 17 * i) % 1000;
    user = user % (1 + user % 100);
    o_user->AppendInt(user);
    o_amount->AppendInt((i * 37) % 500);
  }
  db.AddJoinRelation({"users", "id"}, {"orders", "user_id"});

  // 2. Offline phase, once; the trained model is immutable and shared by
  //    every worker thread (Estimate is const).
  FactorJoinConfig config;
  config.num_bins = 64;
  FactorJoinEstimator estimator(db, config);

  // 3. The serving layer: 4 workers, bounded queue, 16-way sharded LRU cache.
  EstimatorServiceOptions options;
  options.num_threads = 4;
  options.cache_shards = 16;
  EstimatorService service(estimator, options);

  // 4. Fire a burst of async requests — filtered variants of the same join.
  std::vector<std::future<double>> futures;
  for (int lo = 20; lo < 60; ++lo) {
    Query q;
    q.AddTable("users").AddTable("orders");
    q.AddJoin("users", "id", "orders", "user_id");
    q.SetFilter("users", Predicate::Cmp("age", CmpOp::kGt, Literal::Int(lo)));
    futures.push_back(service.EstimateAsync(q));
  }
  // Repeat the burst: every repeated query is now a cache hit.
  for (int lo = 20; lo < 60; ++lo) {
    Query q;
    q.AddTable("users").AddTable("orders");
    q.AddJoin("users", "id", "orders", "user_id");
    q.SetFilter("users", Predicate::Cmp("age", CmpOp::kGt, Literal::Int(lo)));
    futures.push_back(service.EstimateAsync(q));
  }
  std::vector<double> results;
  for (auto& f : futures) results.push_back(f.get());
  std::printf("age > 20 join estimate: %.0f rows\n", results.front());

  // 5. Batched sub-plan serving — the optimizer-facing API.
  Query q;
  q.AddTable("users").AddTable("orders");
  q.AddJoin("users", "id", "orders", "user_id");
  q.SetFilter("orders",
              Predicate::Cmp("amount", CmpOp::kLt, Literal::Int(100)));
  auto subplans =
      service.EstimateSubplans(q, EnumerateConnectedSubsets(q, 1));
  for (const auto& [mask, card] : subplans) {
    std::printf("  sub-plan mask %llx -> %.0f rows\n",
                static_cast<unsigned long long>(mask), card);
  }

  // 6. Service metrics.
  ServiceStats stats = service.Stats();
  std::printf("requests=%llu subplan_requests=%llu hit_rate=%.0f%% "
              "p50=%.1fus p99=%.1fus\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.subplan_requests),
              stats.cache.HitRate() * 100.0, stats.p50_micros,
              stats.p99_micros);
  return 0;
}

// Incremental updates (Section 4.3): train FactorJoin, append new rows to a
// table, fold them into the model in milliseconds — no re-binning, no join
// denormalization — and watch the estimates track the new data.
//
//   $ ./incremental_updates
#include <cstdio>

#include "exec/true_card.h"
#include "factorjoin/estimator.h"
#include "workload/stats_ceb.h"

using namespace fj;

int main() {
  StatsCebOptions options;
  options.scale = 0.05;
  options.num_queries = 1;
  auto workload = MakeStatsCeb(options);
  Database& db = workload->db;

  FactorJoinConfig config;
  config.num_bins = 100;
  FactorJoinEstimator estimator(db, config);

  Query q;
  q.AddTable("users").AddTable("badges");
  q.AddJoin("users", "Id", "badges", "UserId");
  std::printf("query: %s\n\n", q.ToString().c_str());

  auto report = [&](const char* label) {
    auto truth = TrueCardinality(db, q);
    std::printf("%-22s estimate=%12.0f   true=%12llu\n", label,
                estimator.Estimate(q),
                static_cast<unsigned long long>(truth.value_or(0)));
  };
  report("before insert:");

  // Append 5,000 badges, all for user 1 — a drastic skew change.
  Table* badges = db.MutableTable("badges");
  size_t first_new = badges->num_rows();
  for (int i = 0; i < 5000; ++i) {
    badges->MutableCol("Id")->AppendInt(static_cast<int64_t>(first_new + i + 1));
    badges->MutableCol("UserId")->AppendInt(1);
    badges->MutableCol("Date")->AppendInt(2500);
  }
  double seconds = estimator.ApplyInsert("badges", first_new);
  std::printf("\ninserted 5000 rows; model updated in %.2f ms\n\n",
              seconds * 1e3);
  report("after insert:");
  return 0;
}

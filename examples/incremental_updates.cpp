// Incremental updates (Section 4.3): train FactorJoin, append new rows to a
// table, fold them into the model in milliseconds — no re-binning, no join
// denormalization — and watch the estimates track the new data.
//
// The second half shows the same update flowing through the serving layer:
// ApplyInsert updates the model, NotifyUpdate bumps the service's statistics
// epoch so cached estimates touching the table are lazily invalidated —
// entries for other tables keep hitting (no global cache clear).
//
//   $ ./incremental_updates
#include <cstdio>

#include "exec/true_card.h"
#include "factorjoin/estimator.h"
#include "service/estimator_service.h"
#include "workload/stats_ceb.h"

using namespace fj;

namespace {

// Appends `count` badges rows, all for user 1 — a drastic skew change.
size_t AppendBadges(Database* db, int count) {
  Table* badges = db->MutableTable("badges");
  size_t first_new = badges->num_rows();
  for (int i = 0; i < count; ++i) {
    badges->MutableCol("Id")->AppendInt(static_cast<int64_t>(first_new + i + 1));
    badges->MutableCol("UserId")->AppendInt(1);
    badges->MutableCol("Date")->AppendInt(2500);
  }
  return first_new;
}

}  // namespace

int main() {
  StatsCebOptions options;
  options.scale = 0.05;
  options.num_queries = 1;
  auto workload = MakeStatsCeb(options);
  Database& db = workload->db;

  FactorJoinConfig config;
  config.num_bins = 100;
  FactorJoinEstimator estimator(db, config);

  Query q;
  q.AddTable("users").AddTable("badges");
  q.AddJoin("users", "Id", "badges", "UserId");
  std::printf("query: %s\n\n", q.ToString().c_str());

  auto report = [&](const char* label) {
    auto truth = TrueCardinality(db, q);
    std::printf("%-22s estimate=%12.0f   true=%12llu\n", label,
                estimator.Estimate(q),
                static_cast<unsigned long long>(truth.value_or(0)));
  };
  report("before insert:");

  size_t first_new = AppendBadges(&db, 5000);
  double seconds = estimator.ApplyInsert("badges", first_new);
  std::printf("\ninserted 5000 rows; model updated in %.2f ms "
              "(stats version %llu)\n\n",
              seconds * 1e3,
              static_cast<unsigned long long>(estimator.StatsVersion()));
  report("after insert:");

  // ---- The same update, through the serving layer. -----------------------
  std::printf("\n== serving layer: targeted cache invalidation ==\n");
  EstimatorService service(estimator, {.num_threads = 2});

  Query unrelated;  // touches neither users nor badges
  unrelated.AddTable("votes");
  service.Estimate(q);          // cached
  service.Estimate(unrelated);  // cached

  // Update protocol: quiesce (stop submitting + Drain), mutate, update the
  // estimator, then notify the service — NOT service.InvalidateAll().
  service.Drain();
  size_t more = AppendBadges(&db, 5000);
  estimator.ApplyInsert("badges", more);
  service.NotifyUpdate("badges");

  double served = service.Estimate(q);  // recomputed: its entry went stale
  service.Estimate(unrelated);          // still a cache hit
  ServiceStats stats = service.Stats();
  std::printf("served fresh estimate=%12.0f (epoch %llu)\n", served,
              static_cast<unsigned long long>(stats.epoch));
  std::printf("cache: %llu hits, %llu misses, %llu invalidated "
              "(only entries touching 'badges')\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.invalidations));
  return 0;
}

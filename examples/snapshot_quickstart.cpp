// Save a trained model to disk, load it back without retraining, and serve
// several loaded models side by side through a ModelRegistry.
//
//   $ ./snapshot_quickstart
//
// The load path produces estimates BIT-IDENTICAL to the trained original
// (golden_estimates_test pins this across every serializable estimator) —
// a serving process can restart in milliseconds instead of repaying
// training time.
#include <cstdio>
#include <memory>

#include "factorjoin/estimator.h"
#include "service/model_registry.h"
#include "stats/snapshot.h"
#include "util/timer.h"
#include "workload/stats_ceb.h"

int main() {
  using namespace fj;

  // Train one FactorJoin model on the STATS-CEB-style workload.
  StatsCebOptions workload_options;
  workload_options.scale = 0.05;
  workload_options.num_queries = 4;
  auto workload = MakeStatsCeb(workload_options);
  FactorJoinConfig config;
  config.num_bins = 32;
  FactorJoinEstimator trained(workload->db, config);
  std::printf("trained in %.1f ms, exact model size %zu bytes\n",
              trained.TrainSeconds() * 1e3, trained.ModelSizeBytes());

  // Persist it. The snapshot is a framed, versioned, checksummed binary
  // file (stats/snapshot.h); SaveEstimatorSnapshot/LoadEstimatorSnapshot
  // are the file-level entry points fj_server's --save-model/--load-model
  // flags use.
  const char* path = "/tmp/snapshot_quickstart.fjsnap";
  SaveEstimatorSnapshot(trained, path);

  // Load it back — no retraining, just decode + validation against the
  // bound database (which must be the same logical data).
  WallTimer load_timer;
  std::unique_ptr<CardinalityEstimator> loaded =
      LoadEstimatorSnapshot(workload->db, path);
  std::printf("loaded in %.1f ms\n", load_timer.Seconds() * 1e3);

  const Query& q = workload->queries.front();
  double a = trained.Estimate(q);
  double b = loaded->Estimate(q);
  std::printf("trained: %.6f, loaded: %.6f (%s)\n", a, b,
              a == b ? "bit-identical" : "MISMATCH!");

  // Multi-model serving: one registry, two independent models — each with
  // its own worker pool, cache, and update epochs. The remote front end
  // (net/EstimatorServer) routes requests to them by name; in process,
  // Find() resolves the service directly.
  ModelRegistry registry;
  registry.AddModel("snapshot", std::move(loaded), {.num_threads = 2});
  FactorJoinConfig wide = config;
  wide.num_bins = 64;
  registry.AddModel("wide",
                    std::make_unique<FactorJoinEstimator>(workload->db, wide),
                    {.num_threads = 2});
  std::printf("serving models:");
  for (const auto& name : registry.ModelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nsnapshot-model estimate: %.1f, wide-model estimate: %.1f\n",
              registry.Find("snapshot")->Estimate(q),
              registry.Find("wide")->Estimate(q));
  return a == b ? 0 : 1;
}

// Remote-estimation quickstart: put a trained estimator behind a TCP
// socket with EstimatorServer, connect an EstimatorClient (in a real
// deployment this is another process — see tools/fj_server.cpp and
// tools/fj_client.cpp), and issue pipelined estimate requests.
//
//   $ ./remote_quickstart
#include <cstdio>
#include <future>
#include <vector>

#include "factorjoin/estimator.h"
#include "net/client.h"
#include "net/server.h"
#include "query/subplan.h"
#include "service/estimator_service.h"

using namespace fj;

int main() {
  // 1. Data + offline training, once, server-side (same schema as
  //    examples/service_quickstart.cpp).
  Database db;
  Table* users = db.AddTable("users");
  Column* u_id = users->AddColumn("id", ColumnType::kInt64);
  Column* u_age = users->AddColumn("age", ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    u_id->AppendInt(i);
    u_age->AppendInt(18 + (i * 7) % 60);
  }
  Table* orders = db.AddTable("orders");
  Column* o_user = orders->AddColumn("user_id", ColumnType::kInt64);
  Column* o_amount = orders->AddColumn("amount", ColumnType::kInt64);
  for (int i = 0; i < 20000; ++i) {
    int user = (i * i + 17 * i) % 1000;
    user = user % (1 + user % 100);
    o_user->AppendInt(user);
    o_amount->AppendInt((i * 37) % 500);
  }
  db.AddJoinRelation({"users", "id"}, {"orders", "user_id"});
  FactorJoinConfig config;
  config.num_bins = 64;
  FactorJoinEstimator estimator(db, config);

  // 2. Serving stack: service (worker pool + cache) behind a TCP server on
  //    an ephemeral loopback port.
  EstimatorService service(estimator, {.num_threads = 4});
  net::EstimatorServerOptions server_options;
  server_options.endpoint.port = 0;  // kernel picks; read back below
  net::EstimatorServer server(service, server_options);
  server.Start();
  std::printf("server listening on %s\n",
              server.endpoint().ToString().c_str());

  // 3. The client side: connects and speaks the versioned wire protocol.
  //    An optimizer process embeds exactly this object.
  net::EstimatorClientOptions client_options;
  client_options.endpoint = server.endpoint();
  net::EstimatorClient client(client_options);
  client.Connect();

  // 4. Pipelined single estimates: all requests in flight at once, one
  //    connection; the server responds in completion order.
  std::vector<std::future<double>> futures;
  for (int lo = 20; lo < 60; ++lo) {
    Query q;
    q.AddTable("users").AddTable("orders");
    q.AddJoin("users", "id", "orders", "user_id");
    q.SetFilter("users", Predicate::Cmp("age", CmpOp::kGt, Literal::Int(lo)));
    futures.push_back(client.EstimateAsync(q));
  }
  std::vector<double> results;
  for (auto& f : futures) results.push_back(f.get());
  std::printf("age > 20 join estimate (remote): %.0f rows\n",
              results.front());

  // 5. Batched sub-plan estimates — the optimizer-facing API, remoted.
  Query q;
  q.AddTable("users").AddTable("orders");
  q.AddJoin("users", "id", "orders", "user_id");
  q.SetFilter("orders",
              Predicate::Cmp("amount", CmpOp::kLt, Literal::Int(100)));
  auto masks = EnumerateConnectedSubsets(q, 1);
  auto remote = client.EstimateSubplans(q, masks);
  // Values are bit-identical to asking the in-process service directly.
  auto local = service.EstimateSubplans(q, masks);
  bool identical = true;
  for (uint64_t mask : masks) {
    if (remote.at(mask) != local.at(mask)) identical = false;
  }
  std::printf("remote == in-process for %zu sub-plans: %s\n", masks.size(),
              identical ? "yes (bit-identical)" : "NO");

  // 6. Remote service metrics.
  ServiceStats stats = client.Stats();
  std::printf("remote stats: requests=%llu subplan_requests=%llu "
              "hit_rate=%.0f%% pending=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.subplan_requests),
              stats.cache.HitRate() * 100.0,
              static_cast<unsigned long long>(stats.pending_requests));

  client.Disconnect();
  server.Stop();
  return identical ? 0 : 1;
}
